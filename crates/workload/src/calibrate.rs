//! Calibrating the workload model from a trace.
//!
//! §3: "the administrator … believes that the user community at the CTC
//! and at Institution B will be very similar", and §6.2 extracts
//! statistical data from the trace. This module closes the loop for other
//! installations: given *any* workload (e.g. a site's own SWF trace),
//! [`fit_ctc_model`] estimates the parameters of [`crate::ctc::CtcModel`]
//! so synthetic workloads with the site's first-order statistics can be
//! generated at any size — the same role the §6.2 binned model plays,
//! but parametric (and therefore extrapolatable to what-if studies, §2.4:
//! "the workload model must be modified as the number of users and/or the
//! types and sizes of submitted jobs change over time").

use crate::ctc::CtcModel;
use crate::stats::Summary;
use crate::trace::Workload;

/// Parameters estimated from a trace, with the evidence behind them.
#[derive(Clone, Debug)]
pub struct Calibration {
    /// The fitted generator model.
    pub model: CtcModel,
    /// Observed inter-arrival summary.
    pub interarrival: Summary,
    /// Observed runtime summary (log-domain mean/σ drive the fit).
    pub runtime: Summary,
    /// Observed fraction of jobs killed at their limit.
    pub killed_fraction: f64,
    /// Distinct submitting users.
    pub users: u32,
}

/// Weibull shape from the coefficient of variation (same moment
/// approximation as [`crate::distr::Weibull::fit`]).
fn weibull_shape(cv: f64) -> f64 {
    cv.max(0.05).powf(-1.086).clamp(0.1, 20.0)
}

/// Fit a [`CtcModel`] to a workload. Requires ≥ 2 jobs.
pub fn fit_ctc_model(trace: &Workload) -> Calibration {
    assert!(trace.len() >= 2, "need at least two jobs to calibrate");
    let jobs = trace.jobs();

    let interarrival =
        Summary::from_iter(jobs.windows(2).map(|p| (p[1].submit - p[0].submit) as f64));
    // Log-domain moments of the effective runtime give the log-normal fit
    // directly: μ = E[ln x], σ = std[ln x].
    let log_runtime = Summary::from_iter(
        jobs.iter()
            .map(|j| (j.effective_runtime().max(1) as f64).ln()),
    );
    let runtime = Summary::from_iter(jobs.iter().map(|j| j.effective_runtime() as f64));
    let killed = jobs.iter().filter(|j| j.killed_at_limit()).count() as f64 / jobs.len() as f64;
    let users = jobs
        .iter()
        .map(|j| j.user)
        .collect::<std::collections::BTreeSet<_>>()
        .len() as u32;
    let max_nodes = jobs.iter().map(|j| j.nodes).max().unwrap_or(1);

    let model = CtcModel {
        jobs: trace.len(),
        machine_nodes: trace.machine_nodes(),
        mean_interarrival: interarrival.mean().max(1.0),
        interarrival_shape: weibull_shape(interarrival.cv()),
        runtime_mu: log_runtime.mean(),
        runtime_sigma: log_runtime.std_dev().max(0.1),
        killed_fraction: killed.clamp(0.0, 0.5),
        users: users.max(1),
        max_regular_nodes: max_nodes.min(trace.machine_nodes()),
    };
    Calibration {
        model,
        interarrival,
        runtime,
        killed_fraction: killed,
        users,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctc::prepared_ctc_workload;
    use crate::stats::WorkloadStats;

    #[test]
    fn self_calibration_recovers_first_order_statistics() {
        // Fit on a generated trace, regenerate, compare: the round trip
        // must approximately preserve means (the §6.2 consistency check,
        // parametric edition).
        let base = prepared_ctc_workload(8_000, 77);
        let cal = fit_ctc_model(&base);
        let regen = cal.model.generate(78);
        let sb = WorkloadStats::of(&base);
        let sr = WorkloadStats::of(&regen);
        let rel = |a: f64, b: f64| (a - b).abs() / a.abs().max(1e-9);
        assert!(
            rel(sb.interarrival.mean(), sr.interarrival.mean()) < 0.25,
            "interarrival {} vs {}",
            sb.interarrival.mean(),
            sr.interarrival.mean()
        );
        assert!(
            rel(sb.runtime.mean(), sr.runtime.mean()) < 0.35,
            "runtime {} vs {}",
            sb.runtime.mean(),
            sr.runtime.mean()
        );
    }

    #[test]
    fn calibration_reports_evidence() {
        let base = prepared_ctc_workload(3_000, 9);
        let cal = fit_ctc_model(&base);
        assert!(cal.users > 100, "users {}", cal.users);
        assert!(
            (0.02..0.2).contains(&cal.killed_fraction),
            "{}",
            cal.killed_fraction
        );
        assert!(
            cal.model.interarrival_shape < 1.0,
            "bursty traces fit shape < 1"
        );
        assert_eq!(cal.model.machine_nodes, 256);
    }

    #[test]
    fn weibull_shape_monotone_in_cv() {
        assert!(weibull_shape(0.5) > weibull_shape(1.0));
        assert!(weibull_shape(1.0) > weibull_shape(2.0));
        assert!((weibull_shape(1.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "two jobs")]
    fn tiny_trace_rejected() {
        let w = Workload::new("t", 16, vec![]);
        let _ = fit_ctc_model(&w);
    }
}
