//! Workloads: ordered job streams plus the trace-preparation operations
//! the paper's administrator performs in §6.1.

use crate::job::{Job, JobError, JobId, NodeType, Time};
use crate::layout::MachineLayout;
use crate::moldable::MoldableChoice;

/// An ordered collection of jobs plus the machine context it was recorded
/// (or generated) for.
///
/// Jobs are kept sorted by submission time; ids are re-densified after every
/// structural modification so that `jobs[id.index()].id == id` always holds
/// — the simulator and the metrics rely on this for O(1) lookups.
#[derive(Clone, Debug)]
pub struct Workload {
    name: String,
    machine_nodes: u32,
    jobs: Vec<Job>,
    layout: Option<MachineLayout>,
    /// Extra moldable alternatives per job (indexed by job id), beyond
    /// the rigid shape every job has. `None` — the common case — means
    /// the workload is rigid. Structural edits (retarget, window,
    /// retain) renumber jobs, so they drop the table.
    moldable: Option<Vec<Vec<MoldableChoice>>>,
}

impl Workload {
    /// Build a workload from a job list. Jobs are sorted by submission time
    /// (stable, so equal-time jobs keep their given order — FCFS tie-break)
    /// and re-numbered densely.
    pub fn new(name: impl Into<String>, machine_nodes: u32, mut jobs: Vec<Job>) -> Self {
        jobs.sort_by_key(|j| j.submit);
        let mut w = Workload {
            name: name.into(),
            machine_nodes,
            jobs,
            layout: None,
            moldable: None,
        };
        w.renumber();
        w
    }

    /// Attach a node-class layout describing the target machine's
    /// heterogeneity. The simulator builds a per-class machine from it;
    /// without one the machine is the homogeneous `machine_nodes` pool.
    pub fn with_layout(mut self, layout: MachineLayout) -> Self {
        assert_eq!(
            layout.total_nodes(),
            self.machine_nodes,
            "layout size must match the workload's machine"
        );
        self.layout = Some(layout);
        self
    }

    /// The attached node-class layout, if any.
    pub fn layout(&self) -> Option<&MachineLayout> {
        self.layout.as_ref()
    }

    /// Delete every job the attached layout cannot host (no eligible
    /// class: incompatible type, memory above every compatible node, or
    /// wider than its class pool). Mirrors [`Workload::retarget`] on the
    /// class level; returns the number of deleted jobs.
    ///
    /// Panics if no layout is attached.
    pub fn retain_class_feasible(&mut self) -> usize {
        let layout = self
            .layout
            .as_ref()
            .expect("retain_class_feasible needs a layout");
        let before = self.jobs.len();
        self.jobs.retain(|j| layout.class_for_job(j).is_some());
        self.renumber();
        before - self.jobs.len()
    }

    fn renumber(&mut self) {
        for (i, j) in self.jobs.iter_mut().enumerate() {
            j.id = JobId(i as u32);
        }
        // Renumbering invalidates the id-indexed moldable table.
        self.moldable = None;
    }

    /// Attach moldable alternatives: `table[id]` holds the *extra*
    /// choices of job `id` beyond its rigid shape (an empty inner list
    /// keeps that job rigid). Build one with
    /// [`crate::moldable::synthesize_moldable`].
    pub fn set_moldable(&mut self, table: Vec<Vec<MoldableChoice>>) {
        assert_eq!(
            table.len(),
            self.jobs.len(),
            "moldable table must cover every job"
        );
        for (i, choices) in table.iter().enumerate() {
            for c in choices {
                assert!(
                    c.nodes >= 1 && c.nodes <= self.machine_nodes,
                    "moldable choice of job {i} exceeds the machine"
                );
            }
        }
        self.moldable = Some(table);
    }

    /// Whether any job carries moldable alternatives.
    pub fn is_moldable(&self) -> bool {
        self.moldable
            .as_ref()
            .is_some_and(|t| t.iter().any(|c| !c.is_empty()))
    }

    /// Execution choices of one job: its rigid shape first, then any
    /// moldable alternatives. Never empty — a rigid workload answers with
    /// exactly the one-element list.
    pub fn choices(&self, id: JobId) -> Vec<MoldableChoice> {
        let job = self.job(id);
        let mut out = vec![MoldableChoice::rigid(job)];
        if let Some(table) = &self.moldable {
            out.extend_from_slice(&table[id.index()]);
        }
        out
    }

    /// Descriptive name ("CTC", "probabilistic", ...).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Size of the machine this workload targets.
    pub fn machine_nodes(&self) -> u32 {
        self.machine_nodes
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// All jobs, ordered by submission time.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Look up a job by id.
    pub fn job(&self, id: JobId) -> &Job {
        &self.jobs[id.index()]
    }

    /// Validate every job against the machine size.
    pub fn validate(&self) -> Result<(), JobError> {
        self.jobs
            .iter()
            .try_for_each(|j| j.validate(self.machine_nodes))
    }

    /// §6.1 step 1: retarget the workload to a smaller machine by deleting
    /// every job that requests more than `nodes` nodes ("less than 0.2 % of
    /// all jobs require more than 256 nodes — the administrator modifies
    /// the trace by simply deleting all those highly parallel jobs").
    ///
    /// Returns the number of deleted jobs.
    pub fn retarget(&mut self, nodes: u32) -> usize {
        let before = self.jobs.len();
        self.jobs.retain(|j| j.nodes <= nodes);
        self.machine_nodes = nodes;
        // A previously attached layout no longer matches the machine.
        self.layout = None;
        self.renumber();
        before - self.jobs.len()
    }

    /// §6.1 step 2: ignore the additional hardware requests (node type,
    /// memory) because "most nodes of the CTC batch partition are
    /// identical". All jobs are mapped onto the default thin node class.
    ///
    /// Equivalent to `homogenize_with(false)` — the paper's behavior.
    pub fn homogenize(&mut self) {
        self.homogenize_with(false);
    }

    /// §6.1 step 2 with an escape hatch: when `retain_attributes` is
    /// `false` (the paper's default) the per-job `node_type`/`memory_mb`
    /// requests are zeroed and any node-class layout is dropped; when
    /// `true` the hardware requests survive the preparation step so a
    /// typed layout can be attached afterwards.
    pub fn homogenize_with(&mut self, retain_attributes: bool) {
        if retain_attributes {
            return;
        }
        for j in &mut self.jobs {
            j.node_type = NodeType::Thin;
            j.memory_mb = 0;
        }
        self.layout = None;
    }

    /// Shift all submission times so the first job arrives at `origin`.
    pub fn rebase(&mut self, origin: Time) {
        let Some(first) = self.jobs.first().map(|j| j.submit) else {
            return;
        };
        for j in &mut self.jobs {
            j.submit = j.submit - first + origin;
        }
    }

    /// Keep only jobs submitted in `[from, to)`.
    pub fn window(&mut self, from: Time, to: Time) {
        self.jobs.retain(|j| j.submit >= from && j.submit < to);
        self.renumber();
    }

    /// Keep only the first `n` jobs (used by reduced-scale benchmarks).
    pub fn truncate(&mut self, n: usize) {
        self.jobs.truncate(n);
    }

    /// Total resource consumption (sum of actual areas), in node-seconds.
    pub fn total_area(&self) -> f64 {
        self.jobs.iter().map(Job::area).sum()
    }

    /// Time of the last submission.
    pub fn last_submit(&self) -> Time {
        self.jobs.last().map_or(0, |j| j.submit)
    }

    /// Lower bound on any schedule's makespan: `max(total_area / nodes,
    /// longest job runtime, last submit + its runtime)`.
    pub fn makespan_lower_bound(&self) -> f64 {
        let area_bound = self.total_area() / self.machine_nodes as f64;
        let runtime_bound = self
            .jobs
            .iter()
            .map(|j| j.effective_runtime())
            .max()
            .unwrap_or(0) as f64;
        let tail_bound = self
            .jobs
            .iter()
            .map(|j| j.submit + j.effective_runtime())
            .max()
            .unwrap_or(0) as f64;
        area_bound.max(runtime_bound).max(tail_bound)
    }

    /// Offered load relative to machine capacity over the submission span:
    /// values near (or above) 1 indicate the growing backlog the paper
    /// discusses for the 430→256-node retargeting.
    pub fn offered_load(&self) -> f64 {
        let span = self.last_submit().max(1) as f64;
        self.total_area() / (span * self.machine_nodes as f64)
    }

    /// Consume the workload, returning its jobs.
    pub fn into_jobs(self) -> Vec<Job> {
        self.jobs
    }
}

impl<'a> IntoIterator for &'a Workload {
    type Item = &'a Job;
    type IntoIter = std::slice::Iter<'a, Job>;
    fn into_iter(self) -> Self::IntoIter {
        self.jobs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobBuilder, HOUR};

    fn wl() -> Workload {
        let jobs = vec![
            JobBuilder::new(JobId(0)).submit(50).nodes(300).build(),
            JobBuilder::new(JobId(0)).submit(10).nodes(4).build(),
            JobBuilder::new(JobId(0)).submit(30).nodes(256).build(),
        ];
        Workload::new("t", 430, jobs)
    }

    #[test]
    fn new_sorts_by_submit_and_renumbers() {
        let w = wl();
        let submits: Vec<_> = w.jobs().iter().map(|j| j.submit).collect();
        assert_eq!(submits, vec![10, 30, 50]);
        for (i, j) in w.jobs().iter().enumerate() {
            assert_eq!(j.id.index(), i);
        }
    }

    #[test]
    fn job_lookup_by_id_matches_index() {
        let w = wl();
        for j in w.jobs() {
            assert_eq!(w.job(j.id), j);
        }
    }

    #[test]
    fn retarget_drops_wide_jobs_and_renumbers() {
        let mut w = wl();
        let dropped = w.retarget(256);
        assert_eq!(dropped, 1);
        assert_eq!(w.len(), 2);
        assert_eq!(w.machine_nodes(), 256);
        assert!(w.jobs().iter().all(|j| j.nodes <= 256));
        assert!(w.validate().is_ok());
        for (i, j) in w.jobs().iter().enumerate() {
            assert_eq!(j.id.index(), i);
        }
    }

    #[test]
    fn homogenize_clears_hardware_requests() {
        let mut w = wl();
        w.homogenize();
        assert!(w
            .jobs()
            .iter()
            .all(|j| j.node_type == NodeType::Thin && j.memory_mb == 0));
    }

    #[test]
    fn homogenize_retaining_attributes_is_a_noop_on_jobs() {
        use crate::job::NodeType;
        let jobs = vec![JobBuilder::new(JobId(0))
            .nodes(2)
            .memory_mb(2048)
            .node_type(NodeType::Wide)
            .build()];
        let mut w = Workload::new("t", 430, jobs);
        w.homogenize_with(true);
        assert_eq!(w.jobs()[0].node_type, NodeType::Wide);
        assert_eq!(w.jobs()[0].memory_mb, 2048);
    }

    #[test]
    fn layout_attaches_and_survives_homogenize_with_retain() {
        use crate::layout::MachineLayout;
        let mut w = wl().with_layout(MachineLayout::ctc_sp2(430));
        assert!(w.layout().is_some());
        w.homogenize_with(true);
        assert!(w.layout().is_some());
        w.homogenize();
        assert!(w.layout().is_none());
    }

    #[test]
    fn retarget_drops_stale_layout() {
        use crate::layout::MachineLayout;
        let mut w = wl().with_layout(MachineLayout::ctc_sp2(430));
        w.retarget(256);
        assert!(w.layout().is_none());
    }

    #[test]
    #[should_panic(expected = "layout size must match")]
    fn mismatched_layout_rejected() {
        use crate::layout::MachineLayout;
        let _ = wl().with_layout(MachineLayout::single(100));
    }

    #[test]
    fn retain_class_feasible_drops_unhostable_jobs() {
        use crate::job::NodeType;
        use crate::layout::MachineLayout;
        let jobs = vec![
            // Fits the thin pool.
            JobBuilder::new(JobId(0)).nodes(4).memory_mb(128).build(),
            // Wider than the wide pool: infeasible.
            JobBuilder::new(JobId(0))
                .nodes(100)
                .node_type(NodeType::Wide)
                .memory_mb(512)
                .build(),
            // More memory than any node: infeasible.
            JobBuilder::new(JobId(0)).nodes(1).memory_mb(4096).build(),
        ];
        let mut w = Workload::new("t", 430, jobs).with_layout(MachineLayout::ctc_sp2(430));
        let dropped = w.retain_class_feasible();
        assert_eq!(dropped, 2);
        assert_eq!(w.len(), 1);
        for (i, j) in w.jobs().iter().enumerate() {
            assert_eq!(j.id.index(), i);
        }
    }

    #[test]
    fn rebase_shifts_to_origin() {
        let mut w = wl();
        w.rebase(0);
        assert_eq!(w.jobs()[0].submit, 0);
        assert_eq!(w.jobs()[1].submit, 20);
        assert_eq!(w.jobs()[2].submit, 40);
    }

    #[test]
    fn window_keeps_half_open_range() {
        let mut w = wl();
        w.window(10, 50);
        assert_eq!(w.len(), 2);
        assert!(w.jobs().iter().all(|j| (10..50).contains(&j.submit)));
    }

    #[test]
    fn makespan_lower_bound_dominated_by_long_job() {
        let jobs = vec![JobBuilder::new(JobId(0))
            .submit(0)
            .nodes(1)
            .requested(100 * HOUR)
            .runtime(100 * HOUR)
            .build()];
        let w = Workload::new("t", 256, jobs);
        assert_eq!(w.makespan_lower_bound(), (100 * HOUR) as f64);
    }

    #[test]
    fn total_area_sums_effective_areas() {
        let jobs = vec![
            JobBuilder::new(JobId(0))
                .nodes(2)
                .requested(10)
                .runtime(10)
                .build(),
            JobBuilder::new(JobId(0))
                .nodes(3)
                .requested(5)
                .runtime(9)
                .build(),
        ];
        let w = Workload::new("t", 256, jobs);
        // Second job is killed at its 5 s limit: area = 3 × 5.
        assert_eq!(w.total_area(), 20.0 + 15.0);
    }

    #[test]
    fn empty_workload_is_safe() {
        let w = Workload::new("empty", 256, vec![]);
        assert!(w.is_empty());
        assert_eq!(w.makespan_lower_bound(), 0.0);
        assert_eq!(w.last_submit(), 0);
        assert!(w.validate().is_ok());
    }
}
