//! The §6.2 probability-distribution workload.
//!
//! "In order to overcome some of the difficulties mentioned in Section 6.1
//! the administrator decides to extract statistical data from the CTC
//! workload trace. These data are then used to generate an artificial
//! workload with the same distribution as the workload trace. An analysis
//! of the CTC workload trace yields that a Weibull distribution matches
//! best the submission times of the jobs … bins are created for every
//! possible requested resource number (between 1 and 256), various ranges
//! of requested time and of actual execution length. Then probability
//! values are calculated for each bin from the CTC trace."
//!
//! [`BinnedModel::fit`] builds exactly that: a joint empirical table over
//! (node count, requested-time range, actual-runtime range) plus a Weibull
//! fit of the inter-arrival process; [`BinnedModel::generate`] resamples a
//! new workload from it.

use crate::distr::{Empirical, Sample, Weibull};
use crate::job::{CompletionStatus, Job, JobId, NodeType, Time};
use crate::rng::{Rng, SmallRng};
use crate::stats::Summary;
use crate::trace::Workload;

/// Logarithmic time bins: bin k covers `[2^k, 2^(k+1))` seconds, bin 0
/// covers `[0, 2)`. 32 bins cover every representable runtime.
fn time_bin(t: Time) -> u8 {
    (63 - t.max(1).leading_zeros()) as u8
}

/// Inclusive-exclusive bounds of a time bin.
fn bin_bounds(bin: u8) -> (Time, Time) {
    if bin == 0 {
        (1, 2)
    } else {
        (1 << bin, 1 << (bin + 1))
    }
}

/// One cell of the joint (nodes × requested-range × actual-range) table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Cell {
    nodes: u32,
    req_bin: u8,
    act_bin: u8,
}

/// Statistical model fitted from a base trace per §6.2.
#[derive(Clone, Debug)]
pub struct BinnedModel {
    cells: Empirical<(u32, u8, u8)>,
    interarrival: Weibull,
    machine_nodes: u32,
}

impl BinnedModel {
    /// Fit the model to a base workload: joint bin probabilities for
    /// (nodes, requested-time range, actual-runtime range) and a
    /// method-of-moments Weibull fit for the inter-arrival gaps.
    ///
    /// Panics if the base workload has fewer than 2 jobs (no gap data).
    pub fn fit(base: &Workload) -> Self {
        assert!(base.len() >= 2, "need at least two jobs to fit a model");
        let mut counts: std::collections::BTreeMap<Cell, f64> = std::collections::BTreeMap::new();
        for j in base.jobs() {
            let cell = Cell {
                nodes: j.nodes,
                req_bin: time_bin(j.requested_time),
                act_bin: time_bin(j.runtime),
            };
            *counts.entry(cell).or_insert(0.0) += 1.0;
        }
        // BTreeMap iterates in key order, so equal seeds give equal
        // workloads by construction.
        let cells = Empirical::new(
            counts
                .into_iter()
                .map(|(c, w)| ((c.nodes, c.req_bin, c.act_bin), w)),
        );
        let gaps = Summary::from_iter(
            base.jobs()
                .windows(2)
                .map(|p| (p[1].submit - p[0].submit) as f64),
        );
        let mean = gaps.mean().max(1.0);
        let cv = gaps.cv().max(0.05);
        BinnedModel {
            cells,
            interarrival: Weibull::fit(mean, cv),
            machine_nodes: base.machine_nodes(),
        }
    }

    /// The fitted inter-arrival distribution.
    pub fn interarrival(&self) -> &Weibull {
        &self.interarrival
    }

    /// Size of the machine the base trace was recorded on.
    pub fn machine_nodes(&self) -> u32 {
        self.machine_nodes
    }

    /// Number of populated joint bins.
    pub fn populated_bins(&self) -> usize {
        self.cells.len()
    }

    /// Draw the next job of a stream: advance `clock` by a (scaled)
    /// inter-arrival gap, then sample the job's shape from the joint bin
    /// table. The RNG draw order (gap, bin, requested, runtime, user) is
    /// the generator's wire format — [`generate`](Self::generate) and the
    /// streaming `ProbabilisticSource` both speak it, which is what makes
    /// a capped stream reproduce a batch workload exactly.
    pub fn sample_next(
        &self,
        rng: &mut SmallRng,
        clock: &mut f64,
        arrival_scale: f64,
        id: JobId,
    ) -> Job {
        *clock += self.interarrival.sample(rng).max(1.0) * arrival_scale;
        let (nodes, req_bin, act_bin) = self.cells.draw(rng);
        let (rlo, rhi) = bin_bounds(req_bin);
        let (alo, ahi) = bin_bounds(act_bin);
        let requested = rng.random_range(rlo..rhi);
        let runtime = rng.random_range(alo..ahi);
        let status = if runtime > requested {
            CompletionStatus::KilledAtLimit
        } else {
            CompletionStatus::Completed
        };
        Job {
            id,
            submit: *clock as Time,
            nodes,
            requested_time: requested,
            runtime,
            user: rng.random_range(0..680),
            memory_mb: 0,
            node_type: NodeType::Thin,
            status,
        }
    }

    /// Resample `n` jobs from the fitted distributions ("randomized values
    /// are used and associated to the bins according to their
    /// probability").
    pub fn generate(&self, n: usize, seed: u64) -> Workload {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut jobs = Vec::with_capacity(n);
        let mut clock = 0.0f64;
        for i in 0..n {
            jobs.push(self.sample_next(&mut rng, &mut clock, 1.0, JobId(i as u32)));
        }
        Workload::new("probabilistic", self.machine_nodes, jobs)
    }
}

/// The paper's §6.2 workload in one call: fit on the prepared CTC-like
/// trace, resample `n` jobs.
pub fn probabilistic_workload(base: &Workload, n: usize, seed: u64) -> Workload {
    BinnedModel::fit(base).generate(n, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctc::prepared_ctc_workload;
    use crate::stats::WorkloadStats;

    #[test]
    fn time_bins_are_log2() {
        assert_eq!(time_bin(1), 0);
        assert_eq!(time_bin(2), 1);
        assert_eq!(time_bin(3), 1);
        assert_eq!(time_bin(4), 2);
        assert_eq!(time_bin(4095), 11);
        assert_eq!(time_bin(4096), 12);
    }

    #[test]
    fn bin_bounds_invert_time_bin() {
        for t in [1u64, 2, 3, 7, 100, 3600, 86_400] {
            let (lo, hi) = bin_bounds(time_bin(t));
            assert!((lo..hi).contains(&t), "t={t} lo={lo} hi={hi}");
        }
    }

    #[test]
    fn generated_workload_has_requested_size() {
        let base = prepared_ctc_workload(3_000, 5);
        let w = probabilistic_workload(&base, 1_000, 6);
        assert_eq!(w.len(), 1_000);
        assert!(w.validate().is_ok());
    }

    #[test]
    fn resample_preserves_first_order_statistics() {
        // §6.2's consistency check: the artificial workload must look like
        // the trace it was fitted on.
        let base = prepared_ctc_workload(8_000, 7);
        let w = probabilistic_workload(&base, 8_000, 8);
        let sb = WorkloadStats::of(&base);
        let sw = WorkloadStats::of(&w);
        let d = sb.distance(&sw);
        assert!(d < 0.25, "distance {d}\nbase:\n{sb}\nresampled:\n{sw}");
    }

    #[test]
    fn node_counts_only_from_base_support() {
        let base = prepared_ctc_workload(2_000, 9);
        let support: std::collections::HashSet<u32> = base.jobs().iter().map(|j| j.nodes).collect();
        let w = probabilistic_workload(&base, 2_000, 10);
        for j in w.jobs() {
            assert!(support.contains(&j.nodes), "nodes {} not in base", j.nodes);
        }
    }

    #[test]
    fn killed_status_consistent_with_times() {
        let base = prepared_ctc_workload(2_000, 11);
        let w = probabilistic_workload(&base, 2_000, 12);
        for j in w.jobs() {
            assert_eq!(
                j.killed_at_limit(),
                j.status == CompletionStatus::KilledAtLimit
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let base = prepared_ctc_workload(1_000, 13);
        let a = probabilistic_workload(&base, 500, 14);
        let b = probabilistic_workload(&base, 500, 14);
        assert_eq!(a.jobs(), b.jobs());
    }

    #[test]
    #[should_panic(expected = "at least two jobs")]
    fn fit_rejects_tiny_base() {
        let base = Workload::new("tiny", 256, vec![]);
        let _ = BinnedModel::fit(&base);
    }
}
