//! Parallel Workloads Archive conventions: header metadata and trace
//! cleaning.
//!
//! The paper obtains its trace from Feitelson's archive ([1]) and §6.1
//! shows the administrator inspecting it before use ("a closer look at
//! the CTC workload trace reveals…"). Real archive traces carry a
//! structured comment header and known anomalies that the archive's
//! "cleaned" versions remove. This module provides both sides:
//!
//! * [`SwfHeader`] — the standard header fields, parsed from and emitted
//!   into `;`-comments;
//! * [`clean`] — the archive's cleaning rules as an explicit, reported
//!   transformation (anomalies are returned, not silently dropped),
//!   matching §2's remark that erroneous submissions exist and §6.1's
//!   spirit of making every trace modification a visible decision.

use crate::job::Time;
use crate::trace::Workload;
use std::fmt::Write as _;

/// Standard Workload Format header metadata (the commonly used subset).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SwfHeader {
    /// SWF version.
    pub version: Option<String>,
    /// Machine description ("IBM SP2").
    pub computer: Option<String>,
    /// Site ("Cornell Theory Center").
    pub installation: Option<String>,
    /// Unix timestamp of the trace start.
    pub unix_start_time: Option<i64>,
    /// Number of nodes in the traced partition.
    pub max_nodes: Option<u32>,
    /// Number of jobs the file claims to hold.
    pub max_jobs: Option<usize>,
    /// Free-form note.
    pub note: Option<String>,
}

impl SwfHeader {
    /// Parse the header comments of an SWF document.
    pub fn parse(text: &str) -> SwfHeader {
        let mut h = SwfHeader::default();
        for line in text.lines() {
            let Some(comment) = line.trim().strip_prefix(';') else {
                continue;
            };
            let Some((key, value)) = comment.split_once(':') else {
                continue;
            };
            let value = value.trim();
            match key.trim().to_ascii_lowercase().as_str() {
                "version" => h.version = Some(value.to_string()),
                "computer" => h.computer = Some(value.to_string()),
                "installation" => h.installation = Some(value.to_string()),
                "unixstarttime" => h.unix_start_time = value.parse().ok(),
                "maxnodes" | "maxprocs" => h.max_nodes = value.parse().ok(),
                "maxjobs" | "maxrecords" => h.max_jobs = value.parse().ok(),
                "note" => h.note = Some(value.to_string()),
                _ => {}
            }
        }
        h
    }

    /// Emit the header as SWF comments.
    pub fn emit(&self) -> String {
        let mut out = String::new();
        let mut put = |key: &str, value: Option<String>| {
            if let Some(v) = value {
                let _ = writeln!(out, "; {key}: {v}");
            }
        };
        put("Version", self.version.clone());
        put("Computer", self.computer.clone());
        put("Installation", self.installation.clone());
        put("UnixStartTime", self.unix_start_time.map(|v| v.to_string()));
        put("MaxNodes", self.max_nodes.map(|v| v.to_string()));
        put("MaxJobs", self.max_jobs.map(|v| v.to_string()));
        put("Note", self.note.clone());
        out
    }
}

/// One anomaly found (and fixed) by [`clean`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Anomaly {
    /// A job requested more nodes than the machine has; dropped.
    WiderThanMachine {
        /// Offending nodes request.
        nodes: u32,
    },
    /// A job requested more nodes than its eligible node class holds —
    /// anomalous even when narrower than the whole machine, because a
    /// partitioned machine can never co-schedule it; dropped. Only
    /// raised for workloads carrying a typed layout.
    WiderThanClass {
        /// Offending nodes request.
        nodes: u32,
        /// Size of the widest class pool compatible with the job's
        /// type and memory request.
        class_nodes: u32,
    },
    /// No node class is compatible with the job's type/memory request at
    /// any width; dropped. Only raised for typed layouts.
    NoEligibleClass,
    /// Zero-node request; dropped.
    ZeroNodes,
    /// Zero or negative runtime; dropped.
    ZeroRuntime,
    /// Requested-time limit missing; replaced by the actual runtime.
    MissingEstimate,
    /// Estimate implausibly above the longest observed runtime cap;
    /// clamped.
    EstimateAboveCap {
        /// The original estimate in seconds.
        estimate: Time,
    },
}

/// Result of cleaning a workload.
#[derive(Debug)]
pub struct CleanReport {
    /// The cleaned workload.
    pub workload: Workload,
    /// Every anomaly encountered, in trace order.
    pub anomalies: Vec<Anomaly>,
}

/// Apply the archive's standard cleaning rules. `estimate_cap` bounds
/// user estimates (the CTC queue limit is 18 h; traces contain a few
/// nonsense values far above any queue limit).
///
/// Partition-aware: when the workload carries a typed
/// [`MachineLayout`](crate::layout::MachineLayout), the width check runs
/// against the job's eligible node class, not the whole machine — a job
/// wider than every pool its hardware request fits is anomalous even
/// when narrower than the machine total. The layout is preserved on the
/// cleaned workload.
pub fn clean(workload: &Workload, estimate_cap: Time) -> CleanReport {
    assert!(estimate_cap > 0, "estimate cap must be positive");
    let machine = workload.machine_nodes();
    let layout = workload.layout();
    let mut anomalies = Vec::new();
    let mut jobs = Vec::with_capacity(workload.len());
    for job in workload.jobs() {
        if job.nodes == 0 {
            anomalies.push(Anomaly::ZeroNodes);
            continue;
        }
        if job.nodes > machine {
            anomalies.push(Anomaly::WiderThanMachine { nodes: job.nodes });
            continue;
        }
        if let Some(layout) = layout {
            if layout.class_for_job(job).is_none() {
                anomalies.push(match layout.max_width_for(job.node_type, job.memory_mb) {
                    Some(class_nodes) => Anomaly::WiderThanClass {
                        nodes: job.nodes,
                        class_nodes,
                    },
                    None => Anomaly::NoEligibleClass,
                });
                continue;
            }
        }
        if job.runtime == 0 {
            anomalies.push(Anomaly::ZeroRuntime);
            continue;
        }
        let mut j = job.clone();
        if j.requested_time == 0 {
            anomalies.push(Anomaly::MissingEstimate);
            j.requested_time = j.runtime;
        }
        if j.requested_time > estimate_cap {
            anomalies.push(Anomaly::EstimateAboveCap {
                estimate: j.requested_time,
            });
            j.requested_time = estimate_cap;
        }
        jobs.push(j);
    }
    let mut cleaned = Workload::new(format!("{}-clean", workload.name()), machine, jobs);
    if let Some(layout) = layout {
        cleaned = cleaned.with_layout(layout.clone());
    }
    CleanReport {
        workload: cleaned,
        anomalies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{Job, JobBuilder, JobId};

    const HEADER: &str = "\
; Version: 2
; Computer: IBM SP2
; Installation: Cornell Theory Center
; UnixStartTime: 836000000
; MaxNodes: 430
; MaxJobs: 79164
; Note: batch partition only
1 0 -1 100 4 -1 -1 4 200 1 0 0 -1 -1 -1 -1 -1 -1
";

    #[test]
    fn header_roundtrip() {
        let h = SwfHeader::parse(HEADER);
        assert_eq!(h.computer.as_deref(), Some("IBM SP2"));
        assert_eq!(h.installation.as_deref(), Some("Cornell Theory Center"));
        assert_eq!(h.unix_start_time, Some(836_000_000));
        assert_eq!(h.max_nodes, Some(430));
        assert_eq!(h.max_jobs, Some(79_164));
        let again = SwfHeader::parse(&h.emit());
        assert_eq!(h, again);
    }

    #[test]
    fn header_ignores_unknown_keys_and_data_lines() {
        let h = SwfHeader::parse("; Frobnication: 7\n1 2 3\n");
        assert_eq!(h, SwfHeader::default());
    }

    fn raw(nodes: u32, requested: Time, runtime: Time) -> Job {
        // Bypass builder clamps to produce anomalous records.
        let mut j = JobBuilder::new(JobId(0)).build();
        j.nodes = nodes;
        j.requested_time = requested;
        j.runtime = runtime;
        j
    }

    #[test]
    fn clean_drops_structurally_broken_jobs() {
        let w = Workload::new(
            "dirty",
            64,
            vec![
                raw(4, 100, 100),  // fine
                raw(0, 100, 100),  // zero nodes
                raw(65, 100, 100), // too wide
                raw(4, 100, 0),    // zero runtime
            ],
        );
        let r = clean(&w, 86_400);
        assert_eq!(r.workload.len(), 1);
        assert_eq!(
            r.anomalies,
            vec![
                Anomaly::ZeroNodes,
                Anomaly::WiderThanMachine { nodes: 65 },
                Anomaly::ZeroRuntime
            ]
        );
        assert!(r.workload.validate().is_ok());
    }

    #[test]
    fn clean_repairs_estimates() {
        let w = Workload::new("dirty", 64, vec![raw(4, 0, 500), raw(4, 10_000_000, 100)]);
        let r = clean(&w, 86_400);
        assert_eq!(r.workload.len(), 2);
        assert_eq!(r.workload.jobs()[0].requested_time, 500);
        assert_eq!(r.workload.jobs()[1].requested_time, 86_400);
        assert_eq!(
            r.anomalies,
            vec![
                Anomaly::MissingEstimate,
                Anomaly::EstimateAboveCap {
                    estimate: 10_000_000
                }
            ]
        );
    }

    #[test]
    fn clean_trace_is_untouched() {
        let w = Workload::new("ok", 64, vec![raw(4, 200, 100), raw(8, 400, 399)]);
        let r = clean(&w, 86_400);
        assert!(r.anomalies.is_empty());
        assert_eq!(r.workload.len(), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cap_rejected() {
        let w = Workload::new("x", 64, vec![]);
        let _ = clean(&w, 0);
    }

    #[test]
    fn clean_is_partition_aware_for_typed_layouts() {
        use crate::job::NodeType;
        use crate::layout::{MachineLayout, NodeClassSpec};
        // 48 thin + 16 wide = 64 nodes.
        let layout = MachineLayout::new(vec![
            NodeClassSpec {
                node_type: NodeType::Thin,
                memory_mb: 512,
                count: 48,
            },
            NodeClassSpec {
                node_type: NodeType::Wide,
                memory_mb: 2048,
                count: 16,
            },
        ]);
        let mut wide20 = raw(20, 100, 100);
        wide20.node_type = NodeType::Wide;
        wide20.memory_mb = 1024;
        let mut storage = raw(2, 100, 100);
        storage.node_type = NodeType::Storage;
        let mut thin60 = raw(60, 100, 100);
        thin60.memory_mb = 256;
        let w = Workload::new(
            "dirty",
            64,
            vec![
                raw(4, 100, 100), // fine: thin pool
                wide20,           // 20 wide nodes, pool holds 16: anomalous
                storage,          // no storage pool at all
                thin60,           // 60 > thin pool 48, wide pool narrower
            ],
        )
        .with_layout(layout);
        let r = clean(&w, 86_400);
        assert_eq!(r.workload.len(), 1);
        assert_eq!(
            r.anomalies,
            vec![
                Anomaly::WiderThanClass {
                    nodes: 20,
                    class_nodes: 16
                },
                Anomaly::NoEligibleClass,
                Anomaly::WiderThanClass {
                    nodes: 60,
                    class_nodes: 48
                },
            ]
        );
        // The layout survives cleaning.
        assert!(r.workload.layout().is_some());
    }

    #[test]
    fn clean_without_layout_keeps_machine_wide_check_only() {
        // The same 60-node job is fine on a homogeneous 64-node machine.
        let w = Workload::new("ok", 64, vec![raw(60, 200, 100)]);
        let r = clean(&w, 86_400);
        assert!(r.anomalies.is_empty());
        assert_eq!(r.workload.len(), 1);
    }
}
