//! Standard Workload Format (SWF) reader/writer.
//!
//! The CTC trace the paper uses is distributed through Feitelson's Parallel
//! Workloads Archive ([1] in the paper) in SWF: one job per line, 18
//! whitespace-separated fields, `;` comment lines carrying header metadata.
//! Implementing the full format means a real archive trace can be swapped in
//! for the synthetic CTC model with `Workload::from_swf(&text)` and nothing
//! else changes.
//!
//! Field map (1-based, per the archive definition):
//!  1 job number          7 requested memory (KB/node; we store MB)
//!  2 submit time         8 requested number of processors
//!  3 wait time           9 requested time
//!  4 run time           10 status
//!  5 allocated procs    11 user id
//!  6 avg cpu time       12 group id       13 executable
//! 14 queue              15 partition      16 preceding job
//! 17 think time         18 (unused here)

use crate::job::{CompletionStatus, Job, JobId, NodeType, Time};
use crate::source::{JobSource, SourceError};
use crate::trace::Workload;
use std::fmt::Write as _;
use std::io::BufRead;

/// Error from SWF parsing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SwfError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for SwfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SWF parse error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SwfError {}

fn field(fields: &[&str], idx: usize, line: usize) -> Result<i64, SwfError> {
    fields
        .get(idx)
        .ok_or_else(|| SwfError {
            line,
            message: format!("missing field {}", idx + 1),
        })?
        .parse::<f64>()
        .map(|v| v as i64)
        .map_err(|e| SwfError {
            line,
            message: format!("field {}: {e}", idx + 1),
        })
}

/// What one physical SWF line means, as shared by the batch parser and
/// the streaming reader.
enum SwfLine {
    /// Blank, comment, or a job unusable for simulation (unknown size or
    /// runtime) — the archive recommends skipping those.
    Skip,
    /// A `MaxNodes`/`MaxProcs` header declaration (the widest wins).
    Size(u32),
    /// A usable job; its id is a placeholder for the consumer to assign.
    Job(Box<Job>),
}

/// Classify one raw line. `line` is the 1-based physical line number used
/// in error messages. Trimming handles both CRLF and indented comments.
fn classify_line(raw: &str, line: usize) -> Result<SwfLine, SwfError> {
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Ok(SwfLine::Skip);
    }
    if let Some(comment) = trimmed.strip_prefix(';') {
        if let Some((key, value)) = comment.split_once(':') {
            if key.trim().eq_ignore_ascii_case("MaxNodes")
                || key.trim().eq_ignore_ascii_case("MaxProcs")
            {
                if let Ok(v) = value.trim().parse::<u32>() {
                    return Ok(SwfLine::Size(v));
                }
            }
        }
        return Ok(SwfLine::Skip);
    }
    let fields: Vec<&str> = trimmed.split_whitespace().collect();
    if fields.len() < 10 {
        return Err(SwfError {
            line,
            message: format!("expected ≥10 fields, got {}", fields.len()),
        });
    }
    let submit = field(&fields, 1, line)?;
    let run_time = field(&fields, 3, line)?;
    let procs = field(&fields, 4, line)?;
    let req_procs = field(&fields, 7, line)?;
    let req_time = field(&fields, 8, line)?;
    let status = field(&fields, 9, line)?;
    let user = field(&fields, 10, line).unwrap_or(0).max(0) as u32;
    let mem = field(&fields, 6, line).unwrap_or(-1);

    let nodes = if procs > 0 { procs } else { req_procs };
    if nodes <= 0 || run_time <= 0 {
        return Ok(SwfLine::Skip); // unknown size or runtime: unusable for simulation
    }
    let runtime = run_time as Time;
    let requested = if req_time > 0 {
        req_time as Time
    } else {
        runtime
    };
    Ok(SwfLine::Job(Box::new(Job {
        id: JobId(0),
        submit: submit.max(0) as Time,
        nodes: nodes as u32,
        requested_time: requested,
        runtime,
        user,
        memory_mb: if mem > 0 {
            (mem / 1024).max(1) as u32
        } else {
            0
        },
        node_type: NodeType::Thin,
        status: match status {
            1 => CompletionStatus::Completed,
            5 => CompletionStatus::KilledAtLimit,
            _ => CompletionStatus::Failed,
        },
    })))
}

/// Parse SWF text into a workload.
///
/// * Jobs with unknown (−1) processor counts or runtimes are skipped, as the
///   archive recommends for simulation studies.
/// * `requested time = −1` falls back to the actual runtime (the job then
///   has perfect information, which is what traces without estimates give).
/// * `MaxNodes` from the header comment, when present, sets the machine
///   size; otherwise the widest job does.
pub fn parse(text: &str, name: &str) -> Result<Workload, SwfError> {
    let mut jobs = Vec::new();
    let mut max_nodes: Option<u32> = None;
    for (lineno, raw) in text.lines().enumerate() {
        match classify_line(raw, lineno + 1)? {
            SwfLine::Skip => {}
            SwfLine::Size(v) => max_nodes = Some(max_nodes.map_or(v, |m: u32| m.max(v))),
            SwfLine::Job(j) => jobs.push(*j),
        }
    }
    let machine = max_nodes.unwrap_or_else(|| jobs.iter().map(|j| j.nodes).max().unwrap_or(1));
    Ok(Workload::new(name, machine, jobs))
}

/// Lazy SWF reader: parses one line at a time from any [`BufRead`] and
/// yields jobs through the [`JobSource`] interface, so a trace never has
/// to fit in memory.
///
/// Two deliberate departures from the batch [`parse`]:
///
/// * The machine size must be known before the first job is emitted, so
///   the header block (`MaxNodes`/`MaxProcs`, widest declaration wins) is
///   read eagerly in [`SwfStream::new`]; a trace without a size header is
///   rejected there — use [`SwfStream::with_machine_nodes`] to supply the
///   size out of band. (The batch parser can instead fall back on the
///   widest job, which requires seeing the whole trace.)
/// * Jobs must appear in non-decreasing submission order. The batch
///   parser re-sorts after the fact; a stream has nowhere to sort, so an
///   out-of-order line is an explicit [`SwfError`].
#[derive(Debug)]
pub struct SwfStream<R> {
    reader: R,
    name: String,
    machine_nodes: u32,
    /// First job line, consumed while scanning the header block.
    pending: Option<Job>,
    next_id: u32,
    last_submit: Time,
    lineno: usize,
}

impl<R: BufRead> SwfStream<R> {
    /// Open a stream, reading the header block (up to and including the
    /// first job line) to learn the machine size. Errors if a job appears
    /// before any `MaxNodes`/`MaxProcs` declaration.
    pub fn new(reader: R, name: impl Into<String>) -> Result<Self, SwfError> {
        let mut s = SwfStream {
            reader,
            name: name.into(),
            machine_nodes: 0,
            pending: None,
            next_id: 0,
            last_submit: 0,
            lineno: 0,
        };
        let mut max_nodes: Option<u32> = None;
        loop {
            match s.read_classified()? {
                None => break,
                Some(SwfLine::Skip) => {}
                Some(SwfLine::Size(v)) => max_nodes = Some(max_nodes.map_or(v, |m: u32| m.max(v))),
                Some(SwfLine::Job(j)) => {
                    s.pending = Some(*j);
                    break;
                }
            }
        }
        match max_nodes {
            Some(m) => {
                s.machine_nodes = m;
                Ok(s)
            }
            None if s.pending.is_none() => {
                // Empty or comment-only trace: degenerate but harmless.
                s.machine_nodes = 1;
                Ok(s)
            }
            None => Err(SwfError {
                line: s.lineno,
                message: "no MaxNodes/MaxProcs header before the first job; \
                          a stream cannot infer the machine size from the widest job \
                          (use SwfStream::with_machine_nodes)"
                    .into(),
            }),
        }
    }

    /// Open a stream with an explicit machine size, ignoring any size
    /// headers in the text. Nothing is read until the first `next_job`.
    pub fn with_machine_nodes(reader: R, name: impl Into<String>, machine_nodes: u32) -> Self {
        assert!(machine_nodes > 0, "machine must have at least one node");
        SwfStream {
            reader,
            name: name.into(),
            machine_nodes,
            pending: None,
            next_id: 0,
            last_submit: 0,
            lineno: 0,
        }
    }

    /// Read and classify the next physical line; `None` at end of input.
    fn read_classified(&mut self) -> Result<Option<SwfLine>, SwfError> {
        let mut buf = String::new();
        match self.reader.read_line(&mut buf) {
            Ok(0) => Ok(None),
            Ok(_) => {
                self.lineno += 1;
                classify_line(&buf, self.lineno).map(Some)
            }
            Err(e) => Err(SwfError {
                line: self.lineno + 1,
                message: format!("read error: {e}"),
            }),
        }
    }

    /// Assign the next dense id, enforcing submission order.
    fn emit(&mut self, mut job: Job) -> Result<Option<Job>, SourceError> {
        let id = JobId(self.next_id);
        if job.submit < self.last_submit {
            return Err(SourceError::OutOfOrder {
                id,
                submit: job.submit,
                prev: self.last_submit,
            });
        }
        job.id = id;
        self.next_id += 1;
        self.last_submit = job.submit;
        Ok(Some(job))
    }
}

impl<R: BufRead> JobSource for SwfStream<R> {
    fn name(&self) -> &str {
        &self.name
    }

    fn machine_nodes(&self) -> u32 {
        self.machine_nodes
    }

    fn next_job(&mut self) -> Result<Option<Job>, SourceError> {
        if let Some(j) = self.pending.take() {
            return self.emit(j);
        }
        loop {
            match self.read_classified()? {
                None => return Ok(None),
                // Size headers after the first job can no longer change
                // the already-reported machine size; ignore them.
                Some(SwfLine::Skip) | Some(SwfLine::Size(_)) => {}
                Some(SwfLine::Job(j)) => return self.emit(*j),
            }
        }
    }
}

/// Serialise a workload to SWF text (header comment + one line per job).
pub fn write(w: &Workload) -> String {
    let mut out = String::with_capacity(w.len() * 64 + 128);
    let _ = writeln!(out, "; Workload: {}", w.name());
    let _ = writeln!(out, "; MaxNodes: {}", w.machine_nodes());
    let _ = writeln!(out, "; Generated by jobsched-workload");
    for j in w.jobs() {
        let status = match j.status {
            CompletionStatus::Completed => 1,
            CompletionStatus::KilledAtLimit => 5,
            CompletionStatus::Failed => 0,
        };
        let _ = writeln!(
            out,
            "{} {} -1 {} {} {} {} {} {} {} {} -1 -1 -1 -1 -1 -1 -1",
            j.id.0 + 1,
            j.submit,
            j.runtime,
            j.nodes,
            j.memory_mb as i64 * 1024,
            (j.memory_mb as i64) * 1024,
            j.nodes,
            j.requested_time,
            status,
            j.user,
        );
    }
    out
}

/// Round-trip helper on [`Workload`].
impl Workload {
    /// Parse an SWF document (see [`parse`]).
    pub fn from_swf(text: &str, name: &str) -> Result<Workload, SwfError> {
        parse(text, name)
    }

    /// Serialise to SWF (see [`write`]).
    pub fn to_swf(&self) -> String {
        write(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobBuilder;

    const SAMPLE: &str = "\
; MaxNodes: 430
; UnixStartTime: 836000000
1 0 10 3600 32 -1 262144 32 7200 1 17 5 -1 -1 -1 -1 -1 -1
2 100 -1 120 1 -1 -1 1 300 5 18 5 -1 -1 -1 -1 -1 -1
3 200 -1 -1 -1 -1 -1 16 600 0 19 5 -1 -1 -1 -1 -1 -1
";

    #[test]
    fn parse_reads_jobs_and_header() {
        let w = parse(SAMPLE, "ctc").unwrap();
        assert_eq!(w.machine_nodes(), 430);
        // Job 3 has unknown runtime/procs and is skipped.
        assert_eq!(w.len(), 2);
        let j = &w.jobs()[0];
        assert_eq!(j.submit, 0);
        assert_eq!(j.nodes, 32);
        assert_eq!(j.runtime, 3600);
        assert_eq!(j.requested_time, 7200);
        assert_eq!(j.status, CompletionStatus::Completed);
        assert_eq!(j.user, 17);
    }

    #[test]
    fn parse_killed_status_mapped() {
        let w = parse(SAMPLE, "ctc").unwrap();
        assert_eq!(w.jobs()[1].status, CompletionStatus::KilledAtLimit);
    }

    #[test]
    fn parse_rejects_short_lines() {
        let err = parse("1 2 3\n", "bad").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.to_string().contains("fields"));
    }

    #[test]
    fn parse_without_header_uses_widest_job() {
        let text = "1 0 -1 100 64 -1 -1 64 200 1 0 0 -1 -1 -1 -1 -1 -1\n";
        let w = parse(text, "x").unwrap();
        assert_eq!(w.machine_nodes(), 64);
    }

    #[test]
    fn roundtrip_preserves_schedule_relevant_fields() {
        let jobs = vec![
            JobBuilder::new(JobId(0))
                .submit(5)
                .nodes(8)
                .requested(600)
                .runtime(300)
                .build(),
            JobBuilder::new(JobId(0))
                .submit(50)
                .nodes(128)
                .requested(1200)
                .runtime(2400)
                .status(CompletionStatus::KilledAtLimit)
                .user(3)
                .build(),
        ];
        let w = Workload::new("orig", 256, jobs);
        let text = w.to_swf();
        let back = Workload::from_swf(&text, "copy").unwrap();
        assert_eq!(back.machine_nodes(), 256);
        assert_eq!(back.len(), w.len());
        for (a, b) in w.jobs().iter().zip(back.jobs()) {
            assert_eq!(a.submit, b.submit);
            assert_eq!(a.nodes, b.nodes);
            assert_eq!(a.requested_time, b.requested_time);
            assert_eq!(a.runtime, b.runtime);
            assert_eq!(a.status, b.status);
            assert_eq!(a.user, b.user);
        }
    }

    #[test]
    fn missing_requested_time_falls_back_to_runtime() {
        let text = "1 0 -1 100 4 -1 -1 4 -1 1 0 0 -1 -1 -1 -1 -1 -1\n";
        let w = parse(text, "x").unwrap();
        assert_eq!(w.jobs()[0].requested_time, 100);
    }

    #[test]
    fn comments_and_blank_lines_anywhere_are_skipped() {
        let text = "\
; MaxNodes: 16
   \t
1 0 -1 100 4 -1 -1 4 200 1 0 0 -1 -1 -1 -1 -1 -1

  ; an indented mid-file comment without a colon
2 10 -1 100 4 -1 -1 4 200 1 0 0 -1 -1 -1 -1 -1 -1
;
";
        let w = parse(text, "x").unwrap();
        assert_eq!(w.len(), 2);
        assert_eq!(w.machine_nodes(), 16);
    }

    #[test]
    fn short_line_error_reports_the_physical_line_number() {
        // Comments and blanks still count toward the reported line number.
        let text = "; MaxNodes: 8\n\n1 0 -1 100 4 -1 -1 4 200 1 0 0 -1 -1 -1 -1 -1 -1\n1 2 3 4\n";
        let err = parse(text, "bad").unwrap_err();
        assert_eq!(err.line, 4);
        assert!(err.to_string().contains("got 4"));
    }

    #[test]
    fn negative_runtime_or_nodes_marks_unusable_jobs_skipped() {
        // Cancelled-before-start jobs appear in real traces with −1
        // runtime and/or −1 processors; both shapes must be dropped
        // without poisoning neighbouring lines.
        let text = "\
1 0 -1 -1 4 -1 -1 4 200 0 0 0 -1 -1 -1 -1 -1 -1
2 5 -1 100 -1 -1 -1 -1 200 0 0 0 -1 -1 -1 -1 -1 -1
3 9 -1 0 4 -1 -1 4 200 0 0 0 -1 -1 -1 -1 -1 -1
4 10 -1 100 0 -1 -1 -5 200 0 0 0 -1 -1 -1 -1 -1 -1
5 20 -1 100 4 -1 -1 4 200 1 0 0 -1 -1 -1 -1 -1 -1
";
        let w = parse(text, "x").unwrap();
        assert_eq!(w.len(), 1);
        assert_eq!(w.jobs()[0].submit, 20);
    }

    #[test]
    fn repeated_size_headers_take_the_maximum() {
        // Some archive traces carry both MaxNodes and MaxProcs (and the
        // occasional duplicate); the widest declaration wins, and an
        // unparsable value is ignored rather than fatal.
        let text = "\
; MaxNodes: 64
; maxprocs: 430
; MaxNodes: 128
; MaxProcs: not-a-number
1 0 -1 100 4 -1 -1 4 200 1 0 0 -1 -1 -1 -1 -1 -1
";
        let w = parse(text, "x").unwrap();
        assert_eq!(w.machine_nodes(), 430);
    }

    #[test]
    fn roundtrip_preserves_memory_failed_status_and_resorts() {
        // Crafted trace: out-of-submit-order input (Workload::new sorts),
        // a Failed job, and a memory requirement that must survive the
        // KB↔MB conversion in both directions.
        let jobs = vec![
            JobBuilder::new(JobId(0))
                .submit(500)
                .nodes(16)
                .requested(100)
                .runtime(40)
                .status(CompletionStatus::Failed)
                .memory_mb(256)
                .build(),
            JobBuilder::new(JobId(0))
                .submit(0)
                .nodes(2)
                .requested(900)
                .runtime(900)
                .user(11)
                .build(),
        ];
        let w = Workload::new("crafted", 32, jobs);
        let back = Workload::from_swf(&w.to_swf(), "copy").unwrap();
        assert_eq!(back.machine_nodes(), 32);
        assert_eq!(back.len(), 2);
        // Sorted by submit: the id-0 job is now the t=0 submission.
        assert_eq!(back.jobs()[0].submit, 0);
        assert_eq!(back.jobs()[0].user, 11);
        assert_eq!(back.jobs()[1].status, CompletionStatus::Failed);
        assert_eq!(back.jobs()[1].memory_mb, 256);
        // A second round trip is a fixpoint.
        assert_eq!(
            back.to_swf(),
            Workload::from_swf(&back.to_swf(), "copy").unwrap().to_swf()
        );
    }

    // ---- streaming reader -------------------------------------------

    use crate::source::collect;

    #[test]
    fn stream_matches_batch_parse_on_sample() {
        let mut s = SwfStream::new(SAMPLE.as_bytes(), "ctc").unwrap();
        let streamed = collect(&mut s).unwrap();
        let batch = parse(SAMPLE, "ctc").unwrap();
        assert_eq!(streamed.machine_nodes(), batch.machine_nodes());
        assert_eq!(streamed.jobs(), batch.jobs());
    }

    #[test]
    fn stream_handles_crlf_and_trailing_blanks() {
        let text = "; MaxNodes: 16\r\n1 0 -1 100 4 -1 -1 4 200 1 0 0 -1 -1 -1 -1 -1 -1\r\n2 10 -1 50 2 -1 -1 2 60 1 0 0 -1 -1 -1 -1 -1 -1\r\n\r\n   \r\n";
        let mut s = SwfStream::new(text.as_bytes(), "crlf").unwrap();
        let w = collect(&mut s).unwrap();
        assert_eq!(w.machine_nodes(), 16);
        assert_eq!(w.len(), 2);
        assert_eq!(w.jobs()[1].submit, 10);
        // Batch parse agrees line for line.
        assert_eq!(w.jobs(), parse(text, "crlf").unwrap().jobs());
    }

    #[test]
    fn stream_rejects_out_of_order_submits() {
        let text = "; MaxNodes: 8\n1 100 -1 10 1 -1 -1 1 20 1 0 0 -1 -1 -1 -1 -1 -1\n2 50 -1 10 1 -1 -1 1 20 1 0 0 -1 -1 -1 -1 -1 -1\n";
        let mut s = SwfStream::new(text.as_bytes(), "ooo").unwrap();
        assert!(s.next_job().unwrap().is_some());
        let err = s.next_job().unwrap_err();
        assert_eq!(
            err,
            SourceError::OutOfOrder {
                id: JobId(1),
                submit: 50,
                prev: 100,
            }
        );
        // The batch parser instead sorts — it is allowed to, it sees
        // the whole trace.
        assert_eq!(parse(text, "ooo").unwrap().jobs()[0].submit, 50);
    }

    #[test]
    fn stream_requires_a_size_header() {
        let text = "1 0 -1 100 4 -1 -1 4 200 1 0 0 -1 -1 -1 -1 -1 -1\n";
        let err = SwfStream::new(text.as_bytes(), "x").unwrap_err();
        assert!(err.to_string().contains("machine size"), "{err}");
        // …unless the caller supplies the size out of band.
        let mut s = SwfStream::with_machine_nodes(text.as_bytes(), "x", 64);
        assert_eq!(s.machine_nodes(), 64);
        assert_eq!(collect(&mut s).unwrap().len(), 1);
    }

    #[test]
    fn stream_assigns_dense_ids_across_skipped_lines() {
        // Unusable lines (unknown runtime/procs) are skipped without
        // burning ids, exactly like the batch parser's renumbering.
        let text = "\
; MaxProcs: 32
1 0 -1 -1 4 -1 -1 4 200 0 0 0 -1 -1 -1 -1 -1 -1
2 5 -1 100 4 -1 -1 4 200 1 0 0 -1 -1 -1 -1 -1 -1
3 9 -1 100 -1 -1 -1 -1 200 0 0 0 -1 -1 -1 -1 -1 -1
4 12 -1 100 4 -1 -1 4 200 1 0 0 -1 -1 -1 -1 -1 -1
";
        let mut s = SwfStream::new(text.as_bytes(), "x").unwrap();
        let w = collect(&mut s).unwrap();
        assert_eq!(w.len(), 2);
        assert_eq!(w.jobs()[0].id, JobId(0));
        assert_eq!(w.jobs()[0].submit, 5);
        assert_eq!(w.jobs()[1].id, JobId(1));
        assert_eq!(w.jobs()[1].submit, 12);
    }

    #[test]
    fn stream_empty_input_is_an_empty_source() {
        let mut s = SwfStream::new("".as_bytes(), "empty").unwrap();
        assert_eq!(s.next_job().unwrap(), None);
        let mut s = SwfStream::new("; just a comment\n".as_bytes(), "empty").unwrap();
        assert_eq!(s.next_job().unwrap(), None);
    }

    #[test]
    fn stream_parse_errors_carry_physical_line_numbers() {
        let text = "; MaxNodes: 8\n\n1 0 -1 10 1 -1 -1 1 20 1 0 0 -1 -1 -1 -1 -1 -1\n1 2 3\n";
        let mut s = SwfStream::new(text.as_bytes(), "bad").unwrap();
        assert!(s.next_job().unwrap().is_some());
        match s.next_job().unwrap_err() {
            SourceError::Swf(e) => {
                assert_eq!(e.line, 4);
                assert!(e.to_string().contains("got 3"));
            }
            other => panic!("expected Swf error, got {other:?}"),
        }
    }
}
