//! Self-contained deterministic random number generation.
//!
//! The build environment cannot fetch external crates, so the workload
//! generators run on this hand-rolled replacement for the tiny slice of
//! `rand`'s API they used: a seedable small-state generator plus uniform
//! range sampling. The generator is xoshiro256++ (Blackman & Vigna),
//! seeded through SplitMix64 — the same construction `rand`'s `SmallRng`
//! family uses — chosen for its 256-bit state, sub-nanosecond step and
//! clean equidistribution at the scale of 10⁵–10⁶ variates per workload.
//!
//! Determinism is a hard requirement (the sweep subsystem's result cache
//! and cross-thread reproducibility both key on it): every sequence is a
//! pure function of the seed, with no global state, platform dependence
//! or hash randomization anywhere in the pipeline.

use std::ops::{Range, RangeInclusive};

/// Uniform-sampling surface shared by all generators.
///
/// `random_range` mirrors the `rand` method of the same name for the
/// range shapes the workload generators actually use (`f64` half-open
/// ranges, integer half-open and inclusive ranges).
pub trait Rng {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits; the standard u64→f64 unit-interval map.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from a range; see [`SampleRange`] for supported shapes.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

/// Range shapes [`Rng::random_range`] accepts.
pub trait SampleRange<T> {
    /// Draw one uniform variate from the range.
    fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> f64 {
        debug_assert!(self.start < self.end, "empty f64 range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end - self.start) as u64;
                self.start + (reduce(rng, span)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (reduce(rng, span + 1)) as $t
            }
        }
    )*};
}

impl_int_range!(u32, u64, usize);

/// Debiased modular reduction of a raw draw onto `[0, span)` by rejection
/// sampling (span > 0). The rejection zone is < 2⁻³² of the space for all
/// spans the generators use, so the loop effectively never spins.
fn reduce<G: Rng + ?Sized>(rng: &mut G, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - u64::MAX % span;
    loop {
        let x = rng.next_u64();
        if x < zone {
            return x % span;
        }
    }
}

/// xoshiro256++ generator: 256-bit state, seedable from a single `u64`.
#[derive(Clone, Debug)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Seed the full state from one `u64` via SplitMix64, as recommended
    /// by the xoshiro authors (avoids the all-zero state and decorrelates
    /// nearby seeds).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SmallRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl Rng for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

/// Derive an independent stream seed from a base seed and a stream index.
///
/// One SplitMix64 step over the XOR keeps derived streams decorrelated;
/// the sweep runner uses this to give every campaign cell its own seed
/// that is stable no matter which worker thread picks the cell up.
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    let mut z = base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_give_distinct_streams() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_interval_bounds_and_mean() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn f64_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let x = rng.random_range(2.5..7.5);
            assert!((2.5..7.5).contains(&x));
        }
    }

    #[test]
    fn int_ranges_cover_and_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            let x = rng.random_range(10u32..16);
            assert!((10..16).contains(&x));
            seen[(x - 10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range hit");
        for _ in 0..1000 {
            let x = rng.random_range(1u64..=3);
            assert!((1..=3).contains(&x));
        }
        let only = rng.random_range(9usize..=9);
        assert_eq!(only, 9);
    }

    #[test]
    fn uniformity_chi_square_sanity() {
        // 16 buckets over u32 draws; loose 1% tolerance on each bucket.
        let mut rng = SmallRng::seed_from_u64(6);
        let mut buckets = [0u32; 16];
        let n = 160_000;
        for _ in 0..n {
            buckets[rng.random_range(0u32..16) as usize] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            let expected = n as f64 / 16.0;
            assert!(
                (b as f64 - expected).abs() < expected * 0.05,
                "bucket {i}: {b} vs {expected}"
            );
        }
    }

    #[test]
    fn derive_seed_is_stable_and_spread() {
        assert_eq!(derive_seed(1999, 0), derive_seed(1999, 0));
        assert_ne!(derive_seed(1999, 0), derive_seed(1999, 1));
        assert_ne!(derive_seed(1999, 0), derive_seed(2000, 0));
    }
}
