//! Random-variate samplers used by the workload generators.
//!
//! Only `rand`'s uniform primitives are assumed; Weibull, exponential and
//! log-normal variates are produced by inverse-CDF / Box–Muller transforms
//! so no extra distribution crate is needed.
//!
//! The paper's §6.2 finds that "a Weibull distribution matches best the
//! submission times of the jobs in the trace" — [`Weibull`] drives the
//! probabilistic workload's inter-arrival times. The empirical binned
//! distribution of §6.2 ("bins are created for every possible requested
//! resource number … probability values are calculated for each bin") is
//! [`Empirical`].

use crate::rng::Rng;

/// A distribution over `f64` that can be sampled with any RNG.
pub trait Sample {
    /// Draw one variate.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64;

    /// Theoretical mean, if known in closed form (used by tests).
    fn mean(&self) -> Option<f64> {
        None
    }
}

/// Uniform distribution on `[lo, hi)`.
#[derive(Clone, Copy, Debug)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// New uniform distribution; requires `lo < hi`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo < hi, "uniform requires lo < hi, got [{lo}, {hi})");
        Uniform { lo, hi }
    }
}

impl Sample for Uniform {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        rng.random_range(self.lo..self.hi)
    }

    fn mean(&self) -> Option<f64> {
        Some(0.5 * (self.lo + self.hi))
    }
}

/// Exponential distribution with the given rate λ (mean 1/λ).
#[derive(Clone, Copy, Debug)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// New exponential distribution; requires `rate > 0`.
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0, "exponential rate must be positive");
        Exponential { rate }
    }
}

impl Sample for Exponential {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse CDF on u ∈ (0, 1]; 1-random_range(0..1) avoids ln(0).
        let u: f64 = 1.0 - rng.random_range(0.0..1.0);
        -u.ln() / self.rate
    }

    fn mean(&self) -> Option<f64> {
        Some(1.0 / self.rate)
    }
}

/// Weibull distribution with shape `k` and scale `lambda`.
///
/// CDF `F(x) = 1 - exp(-(x/λ)^k)`; inverse `λ(-ln(1-u))^(1/k)`.
#[derive(Clone, Copy, Debug)]
pub struct Weibull {
    shape: f64,
    scale: f64,
}

impl Weibull {
    /// New Weibull distribution; requires positive shape and scale.
    pub fn new(shape: f64, scale: f64) -> Self {
        assert!(
            shape > 0.0 && scale > 0.0,
            "weibull parameters must be positive"
        );
        Weibull { shape, scale }
    }

    /// Fit shape and scale from a sample's mean and coefficient of
    /// variation using the method-of-moments approximation
    /// `k ≈ cv^(-1.086)` (Justus), then `λ = mean / Γ(1 + 1/k)`.
    ///
    /// Good enough for workload modelling; exactness is asserted loosely in
    /// tests.
    pub fn fit(mean: f64, cv: f64) -> Self {
        assert!(mean > 0.0 && cv > 0.0);
        let shape = cv.powf(-1.086).clamp(0.1, 20.0);
        let scale = mean / gamma(1.0 + 1.0 / shape);
        Weibull::new(shape, scale)
    }

    /// The shape parameter k.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// The scale parameter λ.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

impl Sample for Weibull {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = 1.0 - rng.random_range(0.0..1.0);
        self.scale * (-u.ln()).powf(1.0 / self.shape)
    }

    fn mean(&self) -> Option<f64> {
        Some(self.scale * gamma(1.0 + 1.0 / self.shape))
    }
}

/// Log-normal distribution: `exp(N(mu, sigma))`.
///
/// Runtime distributions of production MPP traces are famously heavy-tailed;
/// a log-normal body is the standard model (Feitelson's workload book).
#[derive(Clone, Copy, Debug)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// New log-normal with the location/scale of the underlying normal.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma > 0.0, "log-normal sigma must be positive");
        LogNormal { mu, sigma }
    }
}

impl Sample for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }

    fn mean(&self) -> Option<f64> {
        Some((self.mu + 0.5 * self.sigma * self.sigma).exp())
    }
}

/// One standard-normal variate via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.random_range(0.0..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Discrete empirical distribution over arbitrary items, sampled by
/// cumulative-weight binary search (§6.2: "randomized values are used and
/// associated to the bins according to their probability").
#[derive(Clone, Debug)]
pub struct Empirical<T> {
    items: Vec<T>,
    cumulative: Vec<f64>,
}

impl<T: Clone> Empirical<T> {
    /// Build from `(item, weight)` pairs; weights need not be normalised.
    /// Zero-weight items are dropped. Panics if no positive weight remains.
    pub fn new(weighted: impl IntoIterator<Item = (T, f64)>) -> Self {
        let mut items = Vec::new();
        let mut cumulative = Vec::new();
        let mut total = 0.0;
        for (item, w) in weighted {
            assert!(
                w >= 0.0 && w.is_finite(),
                "weights must be finite and non-negative"
            );
            if w > 0.0 {
                total += w;
                items.push(item);
                cumulative.push(total);
            }
        }
        assert!(
            total > 0.0,
            "empirical distribution needs positive total weight"
        );
        Empirical { items, cumulative }
    }

    /// Number of distinct items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the distribution has no items (never true after `new`).
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Draw one item.
    pub fn draw<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
        let total = *self.cumulative.last().expect("non-empty");
        let x = rng.random_range(0.0..total);
        let idx = self.cumulative.partition_point(|&c| c <= x);
        self.items[idx.min(self.items.len() - 1)].clone()
    }
}

/// Lanczos approximation of the gamma function (g = 7, n = 9), accurate to
/// ~15 significant digits for positive real arguments.
pub fn gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    const C: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = C[0];
        let t = x + G + 0.5;
        for (i, &c) in C.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        (std::f64::consts::TAU).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SmallRng;

    fn sample_mean<D: Sample>(d: &D, n: usize, seed: u64) -> f64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn gamma_matches_known_values() {
        assert!((gamma(1.0) - 1.0).abs() < 1e-10);
        assert!((gamma(2.0) - 1.0).abs() < 1e-10);
        assert!((gamma(5.0) - 24.0).abs() < 1e-8);
        assert!((gamma(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn uniform_mean_converges() {
        let d = Uniform::new(2.0, 6.0);
        let m = sample_mean(&d, 100_000, 1);
        assert!((m - 4.0).abs() < 0.05, "mean {m}");
    }

    #[test]
    fn exponential_mean_converges() {
        let d = Exponential::new(0.25);
        let m = sample_mean(&d, 100_000, 2);
        assert!((m - 4.0).abs() < 0.1, "mean {m}");
    }

    #[test]
    fn weibull_mean_matches_closed_form() {
        let d = Weibull::new(1.5, 10.0);
        let expected = d.mean().unwrap();
        let m = sample_mean(&d, 200_000, 3);
        assert!(
            (m - expected).abs() / expected < 0.02,
            "mean {m} vs {expected}"
        );
    }

    #[test]
    fn weibull_shape_one_is_exponential() {
        let d = Weibull::new(1.0, 5.0);
        assert!((d.mean().unwrap() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn weibull_fit_recovers_mean() {
        let d = Weibull::fit(120.0, 1.8);
        let m = sample_mean(&d, 200_000, 4);
        assert!((m - 120.0).abs() / 120.0 < 0.03, "mean {m}");
    }

    #[test]
    fn lognormal_mean_matches_closed_form() {
        let d = LogNormal::new(2.0, 0.5);
        let expected = d.mean().unwrap();
        let m = sample_mean(&d, 300_000, 5);
        assert!(
            (m - expected).abs() / expected < 0.03,
            "mean {m} vs {expected}"
        );
    }

    #[test]
    fn samples_are_positive() {
        let mut rng = SmallRng::seed_from_u64(6);
        let w = Weibull::new(0.6, 100.0);
        let l = LogNormal::new(0.0, 2.0);
        for _ in 0..10_000 {
            assert!(w.sample(&mut rng) >= 0.0);
            assert!(l.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn empirical_respects_weights() {
        let d = Empirical::new(vec![("a", 1.0), ("b", 3.0), ("zero", 0.0)]);
        assert_eq!(d.len(), 2);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..40_000 {
            *counts.entry(d.draw(&mut rng)).or_insert(0usize) += 1;
        }
        assert_eq!(counts.get("zero"), None);
        let a = counts["a"] as f64;
        let b = counts["b"] as f64;
        assert!((b / a - 3.0).abs() < 0.2, "ratio {}", b / a);
    }

    #[test]
    #[should_panic(expected = "positive total weight")]
    fn empirical_rejects_all_zero() {
        let _ = Empirical::new(vec![("a", 0.0)]);
    }

    #[test]
    fn empirical_single_item_always_drawn() {
        let d = Empirical::new(vec![(42u32, 0.5)]);
        let mut rng = SmallRng::seed_from_u64(8);
        for _ in 0..100 {
            assert_eq!(d.draw(&mut rng), 42);
        }
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = SmallRng::seed_from_u64(9);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }
}
