//! Pull-based job sources: the input side of the streaming pipeline.
//!
//! A [`JobSource`] is a submission-ordered stream of jobs that the
//! simulation pipeline (`jobsched-sim::pipeline`) pulls from lazily, so
//! resident memory stays proportional to the *in-flight* job population
//! rather than the trace length. Three producers are provided:
//!
//! * [`WorkloadSource`] — adapter over an in-memory [`Workload`], so every
//!   existing trace/generator plugs into the pipeline unchanged;
//! * [`crate::swf::SwfStream`] — a lazy Standard Workload Format reader
//!   that parses jobs one line at a time from any [`std::io::BufRead`];
//! * [`ProbabilisticSource`] — the §6.2 binned model as an *unbounded*
//!   generator, for arbitrarily long synthetic streams.
//!
//! Contract: sources emit jobs with dense sequential ids (`JobId(k)` for
//! the k-th job) in non-decreasing submission order. The pipeline treats
//! an out-of-order emission as a hard error — a stream cannot be sorted
//! after the fact.

use crate::job::{Job, JobId, Time};
use crate::layout::MachineLayout;
use crate::probabilistic::BinnedModel;
use crate::rng::SmallRng;
use crate::swf::SwfError;
use crate::trace::Workload;

/// Error raised while pulling from a [`JobSource`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SourceError {
    /// A job's submission time went backwards — the stream is not
    /// replayable online and there is no buffer to sort it in.
    OutOfOrder {
        /// The offending job.
        id: JobId,
        /// Its submission time.
        submit: Time,
        /// The previous job's (later) submission time.
        prev: Time,
    },
    /// A job was emitted with a non-sequential id.
    NonDenseId {
        /// The id the source emitted.
        got: JobId,
        /// The id the pipeline expected next.
        expected: JobId,
    },
    /// The underlying SWF text failed to parse.
    Swf(SwfError),
}

impl std::fmt::Display for SourceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SourceError::OutOfOrder { id, submit, prev } => write!(
                f,
                "job {id} submitted at {submit}, before the previous job at {prev}: \
                 streaming sources must be submission-ordered"
            ),
            SourceError::NonDenseId { got, expected } => {
                write!(f, "source emitted job id {got}, expected {expected}")
            }
            SourceError::Swf(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SourceError {}

impl From<SwfError> for SourceError {
    fn from(e: SwfError) -> Self {
        SourceError::Swf(e)
    }
}

/// A pull-based, submission-ordered stream of jobs.
///
/// The streaming analogue of [`Workload`]: the machine context is known
/// up front, the jobs are not. Implementors must emit jobs with dense
/// sequential ids in non-decreasing `submit` order; consumers are
/// entitled to reject violations via [`SourceError`].
pub trait JobSource {
    /// Descriptive name (mirrors [`Workload::name`]).
    fn name(&self) -> &str;

    /// Size of the machine this stream targets.
    fn machine_nodes(&self) -> u32;

    /// Node-class layout of the target machine, when the stream carries
    /// heterogeneity information. `None` (the default) means the
    /// homogeneous [`machine_nodes`](Self::machine_nodes) pool.
    fn layout(&self) -> Option<&MachineLayout> {
        None
    }

    /// Pull the next job, `Ok(None)` when the stream is exhausted.
    fn next_job(&mut self) -> Result<Option<Job>, SourceError>;

    /// `(lower, upper)` bounds on the number of jobs remaining, in
    /// [`Iterator::size_hint`] convention. `(0, None)` when unknown.
    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, None)
    }
}

/// Adapter: any in-memory [`Workload`] as a [`JobSource`].
///
/// The workload's jobs are already submission-sorted and densely
/// numbered by construction, so this source is infallible.
#[derive(Debug)]
pub struct WorkloadSource<'a> {
    workload: &'a Workload,
    next: usize,
}

impl<'a> WorkloadSource<'a> {
    /// Stream `workload`'s jobs in order.
    pub fn new(workload: &'a Workload) -> Self {
        WorkloadSource { workload, next: 0 }
    }
}

impl JobSource for WorkloadSource<'_> {
    fn name(&self) -> &str {
        self.workload.name()
    }

    fn machine_nodes(&self) -> u32 {
        self.workload.machine_nodes()
    }

    fn layout(&self) -> Option<&MachineLayout> {
        self.workload.layout()
    }

    fn next_job(&mut self) -> Result<Option<Job>, SourceError> {
        let job = self.workload.jobs().get(self.next).cloned();
        if job.is_some() {
            self.next += 1;
        }
        Ok(job)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.workload.len() - self.next;
        (left, Some(left))
    }
}

/// The §6.2 binned model as an unbounded (or length-limited) generator.
///
/// Draws jobs from a fitted [`BinnedModel`] with exactly the same RNG
/// discipline as [`BinnedModel::generate`], so the first `n` jobs of a
/// seeded source equal `model.generate(n, seed)` field for field. With
/// no limit the stream never ends — the shape a long-running serving
/// scenario needs.
#[derive(Clone, Debug)]
pub struct ProbabilisticSource {
    model: BinnedModel,
    rng: SmallRng,
    clock: f64,
    next: u32,
    remaining: Option<usize>,
    arrival_scale: f64,
    hetero: Option<MachineLayout>,
    name: String,
}

impl ProbabilisticSource {
    /// Unbounded stream from `model`, seeded deterministically.
    pub fn new(model: BinnedModel, seed: u64) -> Self {
        ProbabilisticSource {
            model,
            rng: SmallRng::seed_from_u64(seed),
            clock: 0.0,
            next: 0,
            remaining: None,
            arrival_scale: 1.0,
            hetero: None,
            name: "probabilistic-stream".into(),
        }
    }

    /// Emit class-tagged jobs for a heterogeneous `layout`: each drawn
    /// job additionally samples CTC-profile hardware attributes
    /// ([`crate::ctc::assign_hardware`]), re-drawing the whole job when
    /// no class of `layout` can host the result. The extra RNG draws
    /// mean this mode deliberately gives up the wire-format parity with
    /// [`BinnedModel::generate`]; with the knob off nothing changes.
    pub fn with_heterogeneity(mut self, layout: MachineLayout) -> Self {
        assert_eq!(
            layout.total_nodes(),
            self.model.machine_nodes(),
            "layout size must match the model's machine"
        );
        self.hetero = Some(layout);
        self
    }

    /// Cap the stream at `n` jobs.
    pub fn with_limit(mut self, n: usize) -> Self {
        self.remaining = Some(n);
        self
    }

    /// Stretch every inter-arrival gap by `scale` (> 1 lowers the offered
    /// load). The CTC-fitted model offers slightly more work than a
    /// 256-node machine drains — fine for a finite replay, divergent for
    /// an unbounded stream — so long-running scenarios use a scale that
    /// keeps the backlog stationary. `scale = 1` preserves RNG parity
    /// with [`BinnedModel::generate`].
    pub fn with_arrival_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0, "arrival scale must be positive");
        self.arrival_scale = scale;
        self
    }

    /// Override the descriptive name.
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }
}

impl JobSource for ProbabilisticSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn machine_nodes(&self) -> u32 {
        self.model.machine_nodes()
    }

    fn layout(&self) -> Option<&MachineLayout> {
        self.hetero.as_ref()
    }

    fn next_job(&mut self) -> Result<Option<Job>, SourceError> {
        if let Some(r) = &mut self.remaining {
            if *r == 0 {
                return Ok(None);
            }
            *r -= 1;
        }
        let mut job = self.model.sample_next(
            &mut self.rng,
            &mut self.clock,
            self.arrival_scale,
            JobId(self.next),
        );
        if let Some(layout) = &self.hetero {
            loop {
                let (memory_mb, node_type) = crate::ctc::assign_hardware(job.nodes, &mut self.rng);
                job.memory_mb = memory_mb;
                job.node_type = node_type;
                if layout.class_for_job(&job).is_some() {
                    break;
                }
                // No class can host this (width, memory, type) triple:
                // re-draw the job shape, keeping the arrival instant so
                // the submission process is untouched.
                let submit = job.submit;
                let mut clock = submit as f64;
                job = self
                    .model
                    .sample_next(&mut self.rng, &mut clock, 0.0, JobId(self.next));
                job.submit = submit;
            }
        }
        self.next += 1;
        Ok(Some(job))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self.remaining {
            Some(r) => (r, Some(r)),
            None => (usize::MAX, None),
        }
    }
}

/// Drain a source into an in-memory [`Workload`] (testing/interop; the
/// whole point of sources is usually *not* to do this).
pub fn collect(source: &mut dyn JobSource) -> Result<Workload, SourceError> {
    let mut jobs = Vec::new();
    while let Some(j) = source.next_job()? {
        jobs.push(j);
    }
    Ok(Workload::new(source.name(), source.machine_nodes(), jobs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctc::prepared_ctc_workload;
    use crate::job::JobBuilder;

    #[test]
    fn workload_source_streams_in_order() {
        let w = Workload::new(
            "t",
            16,
            vec![
                JobBuilder::new(JobId(0)).submit(5).build(),
                JobBuilder::new(JobId(0)).submit(1).build(),
                JobBuilder::new(JobId(0)).submit(9).build(),
            ],
        );
        let mut s = WorkloadSource::new(&w);
        assert_eq!(s.size_hint(), (3, Some(3)));
        assert_eq!(s.machine_nodes(), 16);
        let mut submits = Vec::new();
        let mut ids = Vec::new();
        while let Some(j) = s.next_job().unwrap() {
            submits.push(j.submit);
            ids.push(j.id);
        }
        assert_eq!(submits, vec![1, 5, 9]);
        assert_eq!(ids, vec![JobId(0), JobId(1), JobId(2)]);
        assert_eq!(s.size_hint(), (0, Some(0)));
        assert_eq!(s.next_job().unwrap(), None);
    }

    #[test]
    fn collect_roundtrips_a_workload() {
        let w = prepared_ctc_workload(150, 3);
        let mut s = WorkloadSource::new(&w);
        let back = collect(&mut s).unwrap();
        assert_eq!(back.jobs(), w.jobs());
        assert_eq!(back.machine_nodes(), w.machine_nodes());
    }

    #[test]
    fn probabilistic_source_matches_batch_generate() {
        let base = prepared_ctc_workload(1_000, 5);
        let model = BinnedModel::fit(&base);
        let batch = model.generate(300, 42);
        let mut stream = ProbabilisticSource::new(model, 42).with_limit(300);
        let streamed = collect(&mut stream).unwrap();
        assert_eq!(streamed.jobs(), batch.jobs());
        assert_eq!(streamed.machine_nodes(), batch.machine_nodes());
    }

    #[test]
    fn unbounded_source_keeps_producing() {
        let base = prepared_ctc_workload(500, 6);
        let mut s = ProbabilisticSource::new(BinnedModel::fit(&base), 7);
        assert_eq!(s.size_hint(), (usize::MAX, None));
        let mut last = 0;
        for i in 0..5_000u32 {
            let j = s.next_job().unwrap().expect("unbounded stream never ends");
            assert_eq!(j.id, JobId(i));
            assert!(j.submit >= last, "submission order violated");
            last = j.submit;
        }
    }

    #[test]
    fn hetero_source_emits_class_feasible_jobs() {
        let base = prepared_ctc_workload(1_000, 5);
        let layout = MachineLayout::ctc_sp2(256);
        let mut s = ProbabilisticSource::new(BinnedModel::fit(&base), 21)
            .with_heterogeneity(layout.clone())
            .with_limit(500);
        assert_eq!(s.layout(), Some(&layout));
        let mut last = 0;
        let mut tagged = 0;
        while let Some(j) = s.next_job().unwrap() {
            assert!(j.submit >= last, "submission order violated");
            last = j.submit;
            assert!(layout.class_for_job(&j).is_some(), "{j:?}");
            if j.memory_mb > 0 {
                tagged += 1;
            }
        }
        assert!(tagged > 400, "hardware attributes assigned ({tagged})");
    }

    #[test]
    fn hetero_knob_off_preserves_wire_parity() {
        let base = prepared_ctc_workload(1_000, 5);
        let model = BinnedModel::fit(&base);
        let batch = model.generate(200, 17);
        let mut stream = ProbabilisticSource::new(model, 17).with_limit(200);
        assert_eq!(stream.layout(), None);
        let streamed = collect(&mut stream).unwrap();
        assert_eq!(streamed.jobs(), batch.jobs());
    }

    #[test]
    fn arrival_scale_stretches_gaps() {
        let base = prepared_ctc_workload(500, 6);
        let model = BinnedModel::fit(&base);
        let mut fast = ProbabilisticSource::new(model.clone(), 9).with_limit(200);
        let mut slow = ProbabilisticSource::new(model, 9)
            .with_limit(200)
            .with_arrival_scale(4.0);
        let a = collect(&mut fast).unwrap();
        let b = collect(&mut slow).unwrap();
        assert!(b.last_submit() > 2 * a.last_submit());
        // Same RNG stream otherwise: job shapes are identical.
        for (x, y) in a.jobs().iter().zip(b.jobs()) {
            assert_eq!(
                (x.nodes, x.requested_time, x.runtime),
                (y.nodes, y.requested_time, y.runtime)
            );
        }
    }

    #[test]
    fn source_error_messages_are_informative() {
        let e = SourceError::OutOfOrder {
            id: JobId(3),
            submit: 5,
            prev: 9,
        };
        let msg = e.to_string();
        assert!(msg.contains("3") && msg.contains("5") && msg.contains("9"));
        let e = SourceError::NonDenseId {
            got: JobId(7),
            expected: JobId(2),
        };
        assert!(e.to_string().contains("expected 2"));
    }
}
