//! Node-class layouts: the machine-side description of hardware
//! heterogeneity (§6.1).
//!
//! The CTC SP2's batch partition is not uniform: "the nodes of the CTC
//! computer are not all identical — they differ in type and memory"
//! (§6.1). 382 of its 430 nodes form an interchangeable thin majority;
//! the rest are wide (big-memory) and storage-attached specials. The
//! paper's administrator *discards* the distinction; this module makes
//! keeping it an explicit, first-class option.
//!
//! A [`MachineLayout`] partitions a machine into disjoint
//! [`NodeClassSpec`] pools. Every job is resolved to **exactly one**
//! eligible class ([`MachineLayout::resolve`]) — partitioned scheduling,
//! the discipline real SP2 sites used: a job asking for wide nodes never
//! spills onto thin ones, and vice versa a thin job only escalates into
//! the wide pool when its memory request exceeds the thin capacity.
//!
//! The degenerate [`MachineLayout::single`] layout is *untyped*: it has
//! one class and resolves every job to it regardless of the job's
//! `node_type`/`memory_mb` attributes, reproducing the paper's
//! homogenized machine bit for bit.

use crate::job::{Job, NodeType};

/// Index of a node class within its [`MachineLayout`].
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassId(pub u8);

impl ClassId {
    /// The identifier as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for ClassId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "C{}", self.0)
    }
}

impl std::fmt::Display for ClassId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// One homogeneous pool of nodes within a machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeClassSpec {
    /// Hardware type of every node in the pool.
    pub node_type: NodeType,
    /// Per-node memory capacity in MB. A job is eligible only if its
    /// `memory_mb` request fits.
    pub memory_mb: u32,
    /// Number of nodes in the pool.
    pub count: u32,
}

/// A machine described as disjoint node-class pools.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MachineLayout {
    classes: Vec<NodeClassSpec>,
    typed: bool,
}

/// Can a job requesting `job` type run on a node of type `node`?
/// Thin jobs may escalate into the wide pool (wide nodes are thin nodes
/// with more memory); wide and storage requests are strict.
fn type_compatible(job: NodeType, node: NodeType) -> bool {
    match job {
        NodeType::Thin => matches!(node, NodeType::Thin | NodeType::Wide),
        NodeType::Wide => node == NodeType::Wide,
        NodeType::Storage => node == NodeType::Storage,
    }
}

impl MachineLayout {
    /// The degenerate homogeneous layout: one untyped class of `total`
    /// nodes that accepts every job regardless of its hardware
    /// attributes. This is the paper's §6.1 machine.
    pub fn single(total: u32) -> Self {
        assert!(total > 0, "machine needs at least one node");
        MachineLayout {
            classes: vec![NodeClassSpec {
                node_type: NodeType::Thin,
                memory_mb: u32::MAX,
                count: total,
            }],
            typed: false,
        }
    }

    /// A typed layout from explicit class pools. Jobs are matched against
    /// class attributes; a job with no eligible class cannot run.
    pub fn new(classes: Vec<NodeClassSpec>) -> Self {
        assert!(!classes.is_empty(), "layout needs at least one class");
        assert!(classes.len() <= 256, "at most 256 node classes");
        assert!(
            classes.iter().all(|c| c.count > 0),
            "every class needs at least one node"
        );
        MachineLayout {
            classes,
            typed: true,
        }
    }

    /// The CTC SP2 batch-partition layout (§6.1: 382 of 430 nodes are the
    /// identical thin majority), scaled proportionally to `total` nodes.
    /// Memory capacities follow the trace's request profile: thin nodes
    /// hold the commodity 512 MB, wide and storage nodes 2048 MB.
    pub fn ctc_sp2(total: u32) -> Self {
        assert!(total >= 16, "CTC layout needs at least 16 nodes");
        let scale = |part: u32| ((total as u64 * part as u64 + 215) / 430) as u32;
        let wide = scale(32).max(1);
        let storage = scale(16).max(1);
        let thin = total - wide - storage;
        MachineLayout::new(vec![
            NodeClassSpec {
                node_type: NodeType::Thin,
                memory_mb: 512,
                count: thin,
            },
            NodeClassSpec {
                node_type: NodeType::Wide,
                memory_mb: 2048,
                count: wide,
            },
            NodeClassSpec {
                node_type: NodeType::Storage,
                memory_mb: 2048,
                count: storage,
            },
        ])
    }

    /// The class pools.
    pub fn classes(&self) -> &[NodeClassSpec] {
        &self.classes
    }

    /// Number of classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// A layout always has at least one class.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether job attributes participate in class resolution. Untyped
    /// layouts ([`MachineLayout::single`]) route everything to class 0.
    pub fn typed(&self) -> bool {
        self.typed
    }

    /// Total machine size (sum of the class pools).
    pub fn total_nodes(&self) -> u32 {
        self.classes.iter().map(|c| c.count).sum()
    }

    /// Resolve a request to the one class it will be scheduled in, or
    /// `None` when no class can ever host it.
    ///
    /// Eligibility: compatible node type, sufficient per-node memory, and
    /// a pool at least `nodes` wide. Among eligible classes the exact
    /// type match wins, then the smallest sufficient memory (don't burn
    /// big-memory nodes on small jobs), then the lowest class index.
    pub fn resolve(&self, node_type: NodeType, memory_mb: u32, nodes: u32) -> Option<ClassId> {
        if !self.typed {
            return (nodes <= self.classes[0].count).then_some(ClassId(0));
        }
        self.classes
            .iter()
            .enumerate()
            .filter(|(_, c)| {
                type_compatible(node_type, c.node_type)
                    && c.memory_mb >= memory_mb
                    && c.count >= nodes
            })
            .min_by_key(|(i, c)| (c.node_type != node_type, c.memory_mb, *i))
            .map(|(i, _)| ClassId(i as u8))
    }

    /// [`resolve`](Self::resolve) for a job record.
    pub fn class_for_job(&self, job: &Job) -> Option<ClassId> {
        self.resolve(job.node_type, job.memory_mb, job.nodes)
    }

    /// Widest pool a request of this type/memory could ever use, ignoring
    /// the width itself — `None` when no class is compatible at all.
    /// Distinguishes "too wide for its class" from "wrong hardware"
    /// during trace cleaning.
    pub fn max_width_for(&self, node_type: NodeType, memory_mb: u32) -> Option<u32> {
        if !self.typed {
            return Some(self.classes[0].count);
        }
        self.classes
            .iter()
            .filter(|c| type_compatible(node_type, c.node_type) && c.memory_mb >= memory_mb)
            .map(|c| c.count)
            .max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobBuilder, JobId};

    #[test]
    fn single_layout_routes_everything_to_class_zero() {
        let l = MachineLayout::single(256);
        assert!(!l.typed());
        assert_eq!(l.total_nodes(), 256);
        // Attributes are ignored: even a wide 2 GB request lands in the
        // one homogeneous pool, exactly like the paper's machine.
        assert_eq!(l.resolve(NodeType::Wide, 2048, 10), Some(ClassId(0)));
        assert_eq!(l.resolve(NodeType::Thin, 0, 256), Some(ClassId(0)));
        assert_eq!(l.resolve(NodeType::Thin, 0, 257), None);
    }

    #[test]
    fn ctc_layout_partitions_proportionally() {
        let l = MachineLayout::ctc_sp2(430);
        let counts: Vec<u32> = l.classes().iter().map(|c| c.count).collect();
        assert_eq!(counts, vec![382, 32, 16]);
        assert_eq!(l.total_nodes(), 430);
        let l = MachineLayout::ctc_sp2(256);
        assert_eq!(l.total_nodes(), 256);
        assert!(l.classes()[0].count > 200, "thin majority preserved");
        assert!(l.classes()[1].count >= 1 && l.classes()[2].count >= 1);
    }

    #[test]
    fn resolution_prefers_exact_type_then_smallest_memory() {
        let l = MachineLayout::ctc_sp2(430);
        // Commodity thin job: thin pool.
        assert_eq!(l.resolve(NodeType::Thin, 256, 4), Some(ClassId(0)));
        // Wide request: wide pool even though thin is type-compatible the
        // other way around.
        assert_eq!(l.resolve(NodeType::Wide, 512, 4), Some(ClassId(1)));
        // Big-memory thin job escalates into the wide pool.
        assert_eq!(l.resolve(NodeType::Thin, 2048, 1), Some(ClassId(1)));
        // Storage is strict.
        assert_eq!(l.resolve(NodeType::Storage, 128, 2), Some(ClassId(2)));
    }

    #[test]
    fn resolution_rejects_infeasible_requests() {
        let l = MachineLayout::ctc_sp2(430);
        // Wider than the wide pool.
        assert_eq!(l.resolve(NodeType::Wide, 512, 100), None);
        // More memory than any compatible node.
        assert_eq!(l.resolve(NodeType::Thin, 4096, 1), None);
        // Thin job wider than the thin pool cannot escalate (the wide
        // pool is narrower still).
        assert_eq!(l.resolve(NodeType::Thin, 0, 400), None);
    }

    #[test]
    fn class_for_job_uses_job_attributes() {
        let l = MachineLayout::ctc_sp2(430);
        let j = JobBuilder::new(JobId(0))
            .nodes(2)
            .memory_mb(1024)
            .node_type(NodeType::Thin)
            .build();
        assert_eq!(l.class_for_job(&j), Some(ClassId(1)));
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn empty_layout_rejected() {
        let _ = MachineLayout::new(vec![]);
    }

    #[test]
    fn class_id_formats() {
        assert_eq!(format!("{:?}", ClassId(3)), "C3");
        assert_eq!(ClassId(3).to_string(), "3");
        assert_eq!(ClassId(3).index(), 3);
    }
}
