//! Synthetic stand-in for the CTC SP2 workload trace (§6.1).
//!
//! The paper evaluates against the Cornell Theory Center batch-partition
//! trace, July 1996 – May 1997: 79,164 jobs on a 430-node partition. The
//! real trace is not bundled here; this module generates a workload with
//! the same first-order structure so that every §6.1 preparation step and
//! every downstream experiment runs unchanged (DESIGN.md §2 documents the
//! substitution). If the real trace is available, parse it with
//! [`crate::swf::parse`] instead and the rest of the pipeline is identical.
//!
//! Calibration targets (drawn from the published CTC workload analyses the
//! paper cites — Hotovy, JSSPP'96 — and from the archive's trace summary):
//!
//! * ~79 k jobs over ~330 days → mean inter-arrival ≈ 360 s, strongly
//!   diurnal (day/night) and weekly (weekday/weekend) modulated, bursty
//!   (Weibull gaps with shape < 1);
//! * serial jobs dominate (~37 %), powers of two over-represented, a thin
//!   tail up to the full partition with < 0.2 % of jobs above 256 nodes;
//! * heavy-tailed runtimes (log-normal body, minutes to 18 h);
//! * user estimates overrun actual runtimes by large, irregular factors,
//!   with a small fraction of jobs hitting their limit (killed, status 5);
//! * offered load ≈ 0.6 on 430 nodes — which is what produces the growing
//!   backlog the paper observes after retargeting to 256 nodes.

use crate::distr::{Empirical, LogNormal, Sample, Weibull};
use crate::job::{CompletionStatus, Job, JobId, NodeType, Time, DAY, HOUR};
use crate::rng::{Rng, SmallRng};
use crate::trace::Workload;

/// Configuration of the synthetic CTC-like trace generator.
#[derive(Clone, Debug)]
pub struct CtcModel {
    /// Number of jobs to generate (paper: 79,164).
    pub jobs: usize,
    /// Batch-partition size the trace is "recorded" on (paper: 430).
    pub machine_nodes: u32,
    /// Mean inter-arrival time in seconds before diurnal modulation.
    pub mean_interarrival: f64,
    /// Weibull shape of the inter-arrival gaps (< 1 ⇒ bursty).
    pub interarrival_shape: f64,
    /// Log-normal μ of the runtime distribution.
    pub runtime_mu: f64,
    /// Log-normal σ of the runtime distribution.
    pub runtime_sigma: f64,
    /// Fraction of jobs whose actual runtime exceeds their limit
    /// (killed at the limit, Rule 2).
    pub killed_fraction: f64,
    /// Number of distinct users.
    pub users: u32,
    /// Largest node request below the >256 tail. The real CTC trace holds
    /// almost no full-bisection (≥ 3/4 machine) requests over 11 months;
    /// their frequency decides whether Garey&Graham starves wide jobs —
    /// see the `max_width` ablation bench and EXPERIMENTS.md.
    pub max_regular_nodes: u32,
}

impl Default for CtcModel {
    fn default() -> Self {
        CtcModel {
            jobs: crate::CTC_JOB_COUNT,
            machine_nodes: crate::CTC_NODES,
            mean_interarrival: 360.0,
            interarrival_shape: 0.65,
            // exp(7.95 + 1.55²/2) ≈ 9.4 k s ≈ 2.6 h mean runtime; with the
            // node distribution and the wide-tail damping this offers
            // ~0.55 load on 430 nodes and ~0.9 on 256 — the heavy-backlog
            // regime §6.1 describes after retargeting.
            runtime_mu: 7.95,
            runtime_sigma: 1.55,
            killed_fraction: 0.08,
            users: 680,
            max_regular_nodes: 192,
        }
    }
}

impl CtcModel {
    /// A reduced-size model (same distributions, `n` jobs) for tests and
    /// fast benchmark runs.
    pub fn with_jobs(n: usize) -> Self {
        CtcModel {
            jobs: n,
            ..CtcModel::default()
        }
    }

    /// Generate the workload deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> Workload {
        let mut rng = SmallRng::seed_from_u64(seed);
        let gap_distr = Weibull::new(
            self.interarrival_shape,
            self.mean_interarrival / gamma1p(self.interarrival_shape),
        );
        let runtime_distr = LogNormal::new(self.runtime_mu, self.runtime_sigma);
        let nodes_distr = node_distribution(self.machine_nodes, self.max_regular_nodes);
        let user_distr = user_distribution(self.users);

        let mut jobs = Vec::with_capacity(self.jobs);
        let mut clock = 0.0f64;
        for i in 0..self.jobs {
            // Bursty base process thinned by the diurnal/weekly intensity:
            // low intensity stretches the gap, high intensity compresses it.
            let gap = gap_distr.sample(&mut rng) / diurnal_intensity(clock as Time);
            clock += gap.max(1.0);
            let submit = clock as Time;

            let nodes = nodes_distr.draw(&mut rng);
            let mut runtime = (runtime_distr.sample(&mut rng) as Time).clamp(30, 18 * HOUR);
            // Node count and runtime are negatively correlated in the wide
            // tail of production traces: very wide jobs are mostly short
            // benchmark/debug runs. Dampen the tail accordingly.
            if nodes > 96 {
                runtime = ((runtime as f64 * 0.45) as Time).max(30);
            }
            let (requested, actual, status) = self.estimate(&mut rng, runtime);
            jobs.push(Job {
                id: JobId(i as u32),
                submit,
                nodes,
                requested_time: requested,
                runtime: actual,
                user: user_distr.draw(&mut rng),
                memory_mb: memory_for(nodes, &mut rng),
                node_type: node_type_for(nodes, &mut rng),
                status,
            });
        }
        Workload::new("ctc-like", self.machine_nodes, jobs)
    }

    /// Produce (requested limit, actual runtime, status) with the CTC
    /// over-estimation profile.
    fn estimate<R: Rng>(&self, rng: &mut R, runtime: Time) -> (Time, Time, CompletionStatus) {
        if rng.random_range(0.0..1.0) < self.killed_fraction {
            // The user under-estimated: the job hits its limit and dies.
            let requested = round_request((runtime as f64 * rng.random_range(0.4..0.95)) as Time);
            let requested = requested.max(300);
            return (
                requested,
                requested + 1 + requested / 10,
                CompletionStatus::KilledAtLimit,
            );
        }
        // Over-estimation factor: a mixture of near-exact, moderate and wild
        // guesses (users pad to be safe; many just take queue defaults).
        let p: f64 = rng.random_range(0.0..1.0);
        let factor = if p < 0.15 {
            rng.random_range(1.0..1.15)
        } else if p < 0.70 {
            rng.random_range(1.15..4.0)
        } else {
            rng.random_range(4.0..20.0)
        };
        let requested = round_request(((runtime as f64) * factor) as Time).clamp(300, 24 * HOUR);
        let requested = requested.max(runtime); // padding never below actual here
        (requested, runtime, CompletionStatus::Completed)
    }
}

/// Γ(1 + 1/k), the Weibull mean factor.
fn gamma1p(shape: f64) -> f64 {
    crate::distr::gamma(1.0 + 1.0 / shape)
}

/// Users round their limits to "nice" values: 5-minute granularity below an
/// hour, 30-minute granularity above.
fn round_request(t: Time) -> Time {
    if t < HOUR {
        t.div_ceil(300) * 300
    } else {
        t.div_ceil(1800) * 1800
    }
}

/// Node-count distribution: serial-dominated, power-of-two biased, a thin
/// background up to `max_regular` nodes, plus the > 256-node tail that
/// §6.1 deletes (< 0.2 % of jobs, matching the paper's statistic).
fn node_distribution(machine: u32, max_regular: u32) -> Empirical<u32> {
    let mut weights: Vec<(u32, f64)> = vec![
        (1, 37.0),
        (2, 7.0),
        (3, 1.2),
        (4, 8.0),
        (5, 0.6),
        (6, 1.0),
        (8, 9.0),
        (12, 1.5),
        (16, 8.0),
        (24, 1.0),
        (32, 6.0),
        (48, 0.8),
        (64, 3.5),
        (96, 0.4),
        (128, 1.2),
    ];
    weights.retain(|&(n, _)| n <= max_regular);
    // Fill the gaps with a light 1/n background so every width occurs;
    // widths above half the batch partition are genuinely rare in the CTC
    // trace, so the background thins out there.
    for n in 2..=machine.min(max_regular) {
        let base = if n > 128 { 0.15 } else { 0.8 };
        weights.push((n, base / n as f64));
    }
    // The > 256-node tail that §6.1 deletes: ~0.15 % of jobs.
    if machine > 256 {
        for n in (272..=machine).step_by(16) {
            weights.push((n, 0.03));
        }
    }
    Empirical::new(weights)
}

/// Zipf-like user activity: few heavy users, long tail.
fn user_distribution(users: u32) -> Empirical<u32> {
    Empirical::new((0..users).map(|u| (u, 1.0 / (u as f64 + 1.0).powf(0.9))))
}

/// Day/week intensity of the submission process, normalised to ≈ 1 on
/// average: weekdays 7am–8pm are busy (Rule 5's window), nights and
/// weekends are quiet (Rule 6's window).
pub fn diurnal_intensity(t: Time) -> f64 {
    let day = (t / DAY) % 7; // day 0 = Monday by convention
    let hour = (t % DAY) / HOUR;
    let weekday = day < 5;
    let daytime = (7..20).contains(&hour);
    match (weekday, daytime) {
        (true, true) => 1.65,
        (true, false) => 0.55,
        (false, true) => 0.55,
        (false, false) => 0.35,
    }
}

/// Draw the hardware attributes (per-node memory request, node type) for
/// a job of the given width, with the CTC request profile. Draw order —
/// memory first, then type — matches [`CtcModel::generate`]'s wire
/// format, so a streaming generator that calls this per job reproduces
/// the batch trace's attribute distribution exactly.
pub fn assign_hardware<R: Rng>(nodes: u32, rng: &mut R) -> (u32, NodeType) {
    let memory = memory_for(nodes, rng);
    let node_type = node_type_for(nodes, rng);
    (memory, node_type)
}

fn memory_for<R: Rng>(nodes: u32, rng: &mut R) -> u32 {
    // Wide multi-node jobs request the commodity memory of the big thin
    // pool; big-memory requests come from narrow jobs that target the
    // small wide-node pool.
    let base = [64u32, 128, 128, 256, 256, 512];
    let m = base[rng.random_range(0..base.len())];
    if nodes == 1 && rng.random_range(0.0..1.0) < 0.1 {
        2048 // fat single-node jobs exist
    } else if nodes <= 4 && rng.random_range(0.0..1.0) < 0.08 {
        1024
    } else {
        m
    }
}

fn node_type_for<R: Rng>(nodes: u32, rng: &mut R) -> NodeType {
    // 382 of 430 CTC nodes are the identical majority class (§6.1).
    // Special-class requests only make sense for jobs narrow enough to
    // fit the small wide/storage pools.
    let p: f64 = rng.random_range(0.0..1.0);
    if nodes <= 4 && p < 0.08 {
        NodeType::Wide
    } else if nodes <= 8 && p < 0.02 {
        NodeType::Storage
    } else {
        NodeType::Thin
    }
}

/// Convenience: the paper's fully prepared evaluation input — generate the
/// CTC-like trace, delete >256-node jobs, drop hardware heterogeneity and
/// retarget to the 256-node batch partition of Institution B (§6.1).
pub fn prepared_ctc_workload(jobs: usize, seed: u64) -> Workload {
    let mut w = CtcModel::with_jobs(jobs).generate(seed);
    w.retarget(crate::TARGET_NODES);
    w.homogenize();
    w
}

/// The heterogeneity-preserving variant of [`prepared_ctc_workload`]: the
/// same generate-and-retarget pipeline, but instead of discarding the
/// hardware requests (§6.1 step 2) a proportionally scaled
/// [`MachineLayout::ctc_sp2`](crate::layout::MachineLayout::ctc_sp2)
/// layout is attached and jobs no class can host are deleted — the class
/// analogue of the >256-node deletion of step 1.
pub fn prepared_ctc_workload_hetero(jobs: usize, seed: u64) -> Workload {
    let mut w = CtcModel::with_jobs(jobs).generate(seed);
    w.retarget(crate::TARGET_NODES);
    w.homogenize_with(true);
    let mut w = w.with_layout(crate::layout::MachineLayout::ctc_sp2(crate::TARGET_NODES));
    w.retain_class_feasible();
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::WorkloadStats;

    fn small() -> Workload {
        CtcModel::with_jobs(6_000).generate(42)
    }

    #[test]
    fn generates_requested_job_count() {
        assert_eq!(small().len(), 6_000);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = CtcModel::with_jobs(500).generate(7);
        let b = CtcModel::with_jobs(500).generate(7);
        assert_eq!(a.jobs(), b.jobs());
    }

    #[test]
    fn different_seeds_differ() {
        let a = CtcModel::with_jobs(500).generate(7);
        let b = CtcModel::with_jobs(500).generate(8);
        assert_ne!(a.jobs(), b.jobs());
    }

    #[test]
    fn all_jobs_valid_for_430_nodes() {
        assert!(small().validate().is_ok());
    }

    #[test]
    fn wide_job_fraction_matches_paper() {
        // §6.1: "less than 0.2 % of all jobs require more than 256 nodes".
        let w = CtcModel::with_jobs(30_000).generate(11);
        let wide = w.jobs().iter().filter(|j| j.nodes > 256).count();
        let frac = wide as f64 / w.len() as f64;
        assert!(frac > 0.0, "some wide jobs must exist");
        assert!(frac < 0.004, "wide fraction {frac}");
    }

    #[test]
    fn serial_jobs_dominate() {
        let w = small();
        let serial = w.jobs().iter().filter(|j| j.nodes == 1).count();
        let frac = serial as f64 / w.len() as f64;
        assert!((0.2..0.55).contains(&frac), "serial fraction {frac}");
    }

    #[test]
    fn killed_fraction_near_target() {
        let w = small();
        let killed = w.jobs().iter().filter(|j| j.killed_at_limit()).count();
        let frac = killed as f64 / w.len() as f64;
        assert!((0.04..0.14).contains(&frac), "killed fraction {frac}");
    }

    #[test]
    fn estimates_never_below_actual_for_completed_jobs() {
        let w = small();
        for j in w.jobs() {
            if j.status == CompletionStatus::Completed {
                assert!(j.requested_time >= j.runtime, "{:?}", j);
            }
        }
    }

    #[test]
    fn offered_load_produces_backlog_on_256_nodes() {
        // The paper's central observation: the CTC load that fit on 430
        // nodes creates a growing backlog on 256.
        let w = CtcModel::with_jobs(20_000).generate(3);
        let load430 = w.offered_load();
        assert!((0.35..0.95).contains(&load430), "430-node load {load430}");
        let mut cut = w.clone();
        cut.retarget(256);
        let load256 = cut.offered_load();
        assert!(load256 > 0.75, "256-node load {load256}");
        assert!(load256 > load430);
    }

    #[test]
    fn prepared_workload_fits_target_machine() {
        let w = prepared_ctc_workload(2_000, 1);
        assert_eq!(w.machine_nodes(), 256);
        assert!(w.validate().is_ok());
        assert!(w.jobs().iter().all(|j| j.memory_mb == 0));
    }

    #[test]
    fn hetero_prepared_workload_is_class_feasible() {
        let w = prepared_ctc_workload_hetero(2_000, 1);
        let layout = w.layout().expect("layout attached");
        assert_eq!(layout.total_nodes(), 256);
        assert!(layout.typed());
        for j in w.jobs() {
            assert!(layout.class_for_job(j).is_some(), "{j:?}");
        }
        // The hardware attributes survived preparation.
        assert!(w.jobs().iter().any(|j| j.memory_mb > 0));
        assert!(w
            .jobs()
            .iter()
            .any(|j| j.node_type != crate::job::NodeType::Thin));
    }

    #[test]
    fn assign_hardware_matches_generate_wire_format() {
        // Re-drawing with the same RNG state must reproduce the batch
        // generator's attribute pair for the same width.
        let mut a = crate::rng::SmallRng::seed_from_u64(99);
        let mut b = crate::rng::SmallRng::seed_from_u64(99);
        for nodes in [1u32, 2, 4, 8, 64] {
            let (mem, ty) = assign_hardware(nodes, &mut a);
            assert_eq!(mem, memory_for(nodes, &mut b));
            assert_eq!(ty, node_type_for(nodes, &mut b));
        }
    }

    #[test]
    fn interarrival_is_bursty() {
        let s = WorkloadStats::of(&small());
        assert!(s.interarrival.cv() > 1.0, "cv {}", s.interarrival.cv());
    }

    #[test]
    fn diurnal_intensity_day_exceeds_night() {
        let monday_noon = 12 * HOUR;
        let monday_night = 2 * HOUR;
        let saturday_noon = 5 * DAY + 12 * HOUR;
        assert!(diurnal_intensity(monday_noon) > diurnal_intensity(monday_night));
        assert!(diurnal_intensity(monday_noon) > diurnal_intensity(saturday_noon));
    }

    #[test]
    fn runtimes_within_limits() {
        let w = small();
        for j in w.jobs() {
            assert!(j.effective_runtime() >= 30 || j.killed_at_limit());
            assert!(j.requested_time <= 24 * HOUR + 1800);
        }
    }
}
