//! Summary statistics for workloads.
//!
//! §6.2 requires a consistency check between the trace and the resampled
//! workload ("in the first simulation mainly consistence between the results
//! for the CTC and the artificial workload is checked"). These summaries are
//! what the tests compare.

use crate::job::Job;
use crate::trace::Workload;
use std::fmt;

/// Streaming univariate summary: count, mean, variance (Welford), extremes.
#[derive(Clone, Copy, Debug, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold in one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Build a summary from an iterator.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter(xs: impl IntoIterator<Item = f64>) -> Self {
        let mut s = Summary::new();
        for x in xs {
            s.push(x);
        }
        s
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 for an empty summary).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance.
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation (σ/μ); 0 when the mean is 0.
    pub fn cv(&self) -> f64 {
        if self.mean().abs() < f64::EPSILON {
            0.0
        } else {
            self.std_dev() / self.mean()
        }
    }

    /// Minimum observation (+∞ when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (−∞ when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Percentile (inclusive, nearest-rank) of a data set. `p` in `[0, 100]`.
pub fn percentile(data: &mut [f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
    if data.is_empty() {
        return f64::NAN;
    }
    data.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in percentile data"));
    let rank = ((p / 100.0) * (data.len() as f64 - 1.0)).round() as usize;
    data[rank.min(data.len() - 1)]
}

/// Fixed-width histogram over `[lo, hi)` with overflow/underflow clamped to
/// the edge bins.
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
}

impl Histogram {
    /// New histogram with `bins` equal-width buckets over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo < hi && bins > 0);
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        let bins = self.counts.len();
        let t = (x - self.lo) / (self.hi - self.lo);
        let idx = ((t * bins as f64).floor() as i64).clamp(0, bins as i64 - 1) as usize;
        self.counts[idx] += 1;
    }

    /// Raw bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observation count.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Normalised bucket frequencies.
    pub fn frequencies(&self) -> Vec<f64> {
        let total = self.total().max(1) as f64;
        self.counts.iter().map(|&c| c as f64 / total).collect()
    }
}

/// Per-workload characterisation used for §6.2 consistency checks.
#[derive(Clone, Debug)]
pub struct WorkloadStats {
    /// Workload name.
    pub name: String,
    /// Number of jobs.
    pub jobs: usize,
    /// Node-request summary.
    pub nodes: Summary,
    /// Actual-runtime summary (seconds).
    pub runtime: Summary,
    /// Requested-time summary (seconds).
    pub requested: Summary,
    /// Inter-arrival time summary (seconds).
    pub interarrival: Summary,
    /// Overestimation factor summary (requested / actual).
    pub overestimation: Summary,
    /// Offered load relative to machine capacity.
    pub offered_load: f64,
}

impl WorkloadStats {
    /// Compute statistics for a workload.
    pub fn of(w: &Workload) -> Self {
        let jobs = w.jobs();
        let nodes = Summary::from_iter(jobs.iter().map(|j| j.nodes as f64));
        let runtime = Summary::from_iter(jobs.iter().map(|j| j.effective_runtime() as f64));
        let requested = Summary::from_iter(jobs.iter().map(|j| j.requested_time as f64));
        let interarrival =
            Summary::from_iter(jobs.windows(2).map(|p| (p[1].submit - p[0].submit) as f64));
        let overestimation = Summary::from_iter(jobs.iter().map(Job::overestimation));
        WorkloadStats {
            name: w.name().to_string(),
            jobs: jobs.len(),
            nodes,
            runtime,
            requested,
            interarrival,
            overestimation,
            offered_load: w.offered_load(),
        }
    }

    /// Relative difference between two workloads' key means, as a crude
    /// distance for the §6.2 consistency check (0 = identical first-order
    /// statistics).
    pub fn distance(&self, other: &WorkloadStats) -> f64 {
        fn rel(a: f64, b: f64) -> f64 {
            if a.abs() < f64::EPSILON && b.abs() < f64::EPSILON {
                0.0
            } else {
                (a - b).abs() / a.abs().max(b.abs())
            }
        }
        let parts = [
            rel(self.nodes.mean(), other.nodes.mean()),
            rel(self.runtime.mean(), other.runtime.mean()),
            rel(self.requested.mean(), other.requested.mean()),
            rel(self.interarrival.mean(), other.interarrival.mean()),
        ];
        parts.iter().sum::<f64>() / parts.len() as f64
    }
}

impl fmt::Display for WorkloadStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "workload {:12} jobs={}", self.name, self.jobs)?;
        writeln!(
            f,
            "  nodes        mean={:8.2} cv={:5.2} max={:6.0}",
            self.nodes.mean(),
            self.nodes.cv(),
            self.nodes.max()
        )?;
        writeln!(
            f,
            "  runtime[s]   mean={:8.0} cv={:5.2} max={:8.0}",
            self.runtime.mean(),
            self.runtime.cv(),
            self.runtime.max()
        )?;
        writeln!(
            f,
            "  requested[s] mean={:8.0} cv={:5.2}",
            self.requested.mean(),
            self.requested.cv()
        )?;
        writeln!(
            f,
            "  interarrival mean={:8.1} cv={:5.2}",
            self.interarrival.mean(),
            self.interarrival.cv()
        )?;
        writeln!(
            f,
            "  overestimate mean={:6.2}x  offered load={:5.2}",
            self.overestimation.mean(),
            self.offered_load
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobBuilder, JobId};

    #[test]
    fn summary_mean_and_variance() {
        let s = Summary::from_iter([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.std_dev(), 2.0);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn summary_empty_is_zero() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn percentile_nearest_rank() {
        let mut data = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&mut data, 0.0), 1.0);
        assert_eq!(percentile(&mut data, 50.0), 3.0);
        assert_eq!(percentile(&mut data, 100.0), 5.0);
    }

    #[test]
    fn percentile_empty_is_nan() {
        let mut data: Vec<f64> = vec![];
        assert!(percentile(&mut data, 50.0).is_nan());
    }

    #[test]
    fn histogram_clamps_outliers() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.push(-100.0);
        h.push(0.5);
        h.push(9.9);
        h.push(100.0);
        assert_eq!(h.counts(), &[2, 0, 0, 0, 2]);
        assert_eq!(h.total(), 4);
        let f = h.frequencies();
        assert!((f[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn workload_stats_basic() {
        let jobs = vec![
            JobBuilder::new(JobId(0))
                .submit(0)
                .nodes(10)
                .requested(200)
                .runtime(100)
                .build(),
            JobBuilder::new(JobId(0))
                .submit(100)
                .nodes(20)
                .requested(400)
                .runtime(200)
                .build(),
        ];
        let w = Workload::new("x", 256, jobs);
        let s = WorkloadStats::of(&w);
        assert_eq!(s.jobs, 2);
        assert_eq!(s.nodes.mean(), 15.0);
        assert_eq!(s.runtime.mean(), 150.0);
        assert_eq!(s.interarrival.mean(), 100.0);
        assert_eq!(s.overestimation.mean(), 2.0);
    }

    #[test]
    fn stats_distance_zero_for_identical() {
        let jobs = vec![
            JobBuilder::new(JobId(0)).submit(0).nodes(4).build(),
            JobBuilder::new(JobId(0)).submit(60).nodes(8).build(),
        ];
        let w = Workload::new("x", 256, jobs);
        let s = WorkloadStats::of(&w);
        assert_eq!(s.distance(&s), 0.0);
    }

    #[test]
    fn stats_display_contains_name() {
        let w = Workload::new("ctc-like", 256, vec![]);
        let s = WorkloadStats::of(&w);
        assert!(format!("{s}").contains("ctc-like"));
    }
}
