//! Moldable-job alternatives: per-job `(width, runtime)` execution
//! choices, selected once at start time.
//!
//! The paper's workload model is rigid — every job names one node count
//! and runs at exactly that width. Dutot & Mounié's moldable model (see
//! PAPERS.md) lets the *scheduler* pick the width from a small set of
//! alternatives when the job starts. This module adds that model as a
//! side-table on [`Workload`]: jobs stay rigid `Job` values (nothing in
//! the existing pipeline changes shape), and a workload may carry extra
//! [`MoldableChoice`]s per job that moldable-aware schedulers query via
//! [`Workload::choices`]. A workload without a table reads as
//! "every job has exactly its rigid shape" — the degenerate case.
//!
//! [`synthesize_moldable`] derives alternatives from the rigid trace with
//! a deterministic monotone speedup model: halving the width conserves
//! work perfectly (runtime doubles), doubling it pays a parallelisation
//! penalty (work grows by 25 %). Both directions keep `runtime` and
//! `requested_time` scaled consistently so Rule 2 truncation behaves the
//! same across choices.

use crate::job::{Job, Time};
use crate::trace::Workload;

/// One execution alternative of a moldable job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MoldableChoice {
    /// Width the job would run at.
    pub nodes: u32,
    /// User limit under this choice (scales with the width).
    pub requested_time: Time,
    /// Actual runtime under this choice (hidden from schedulers, exactly
    /// like the rigid runtime).
    pub runtime: Time,
}

impl MoldableChoice {
    /// The rigid shape of `job` as a choice — the degenerate alternative
    /// every job has.
    pub fn rigid(job: &Job) -> Self {
        MoldableChoice {
            nodes: job.nodes,
            requested_time: job.requested_time,
            runtime: job.runtime,
        }
    }

    /// Effective runtime under Rule 2 truncation.
    pub fn effective_runtime(&self) -> Time {
        self.runtime.min(self.requested_time)
    }
}

/// Scale a duration by `num/den` in integer arithmetic, rounding up and
/// clamping to at least 1 second — moldable reshaping never creates
/// zero-length jobs.
fn scale(t: Time, num: u128, den: u128) -> Time {
    let v = (t as u128 * num).div_ceil(den);
    v.max(1).min(Time::MAX as u128) as Time
}

/// Derive an alternative of `job` at width `w` under the monotone model:
/// narrower widths conserve work, wider widths inflate it by 25 %.
fn reshape(job: &Job, w: u32) -> MoldableChoice {
    let n = job.nodes as u128;
    let (num, den) = if (w as u128) <= n {
        (n, w as u128)
    } else {
        // Work grows by 1/4 when spreading wider than submitted.
        (n * 5, w as u128 * 4)
    };
    MoldableChoice {
        nodes: w,
        requested_time: scale(job.requested_time, num, den),
        runtime: scale(job.runtime, num, den),
    }
}

/// Build a moldable side-table for `workload`: for each job, the
/// half-width and double-width reshapes of its rigid form (clamped to
/// `[1, machine]`, deduplicated). Deterministic — no randomness — so
/// sweeps and differential tests see stable alternatives. Returns the
/// table; attach it with [`Workload::set_moldable`].
pub fn synthesize_moldable(workload: &Workload) -> Vec<Vec<MoldableChoice>> {
    let machine = workload.machine_nodes();
    workload
        .jobs()
        .iter()
        .map(|job| {
            let mut extra = Vec::new();
            for w in [job.nodes / 2, job.nodes.saturating_mul(2)] {
                let w = w.clamp(1, machine);
                if w != job.nodes && !extra.iter().any(|c: &MoldableChoice| c.nodes == w) {
                    extra.push(reshape(job, w));
                }
            }
            extra
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobBuilder, JobId};

    fn wl() -> Workload {
        Workload::new(
            "t",
            64,
            vec![
                JobBuilder::new(JobId(0))
                    .submit(0)
                    .nodes(8)
                    .requested(100)
                    .runtime(80)
                    .build(),
                JobBuilder::new(JobId(0))
                    .submit(5)
                    .nodes(1)
                    .requested(50)
                    .runtime(50)
                    .build(),
            ],
        )
    }

    #[test]
    fn rigid_workload_has_one_choice_per_job() {
        let w = wl();
        for job in w.jobs() {
            let cs = w.choices(job.id);
            assert_eq!(cs, vec![MoldableChoice::rigid(job)]);
        }
    }

    #[test]
    fn narrowing_conserves_work_widening_inflates_it() {
        let w = wl();
        let table = synthesize_moldable(&w);
        let cs = &table[0]; // 8-node job: 4-wide and 16-wide reshapes
        let narrow = cs.iter().find(|c| c.nodes == 4).unwrap();
        assert_eq!(narrow.runtime, 160); // 8×80 / 4
        assert_eq!(narrow.requested_time, 200);
        let wide = cs.iter().find(|c| c.nodes == 16).unwrap();
        // 8×80×1.25 / 16 = 50.
        assert_eq!(wide.runtime, 50);
        assert_eq!(wide.requested_time, 63); // ceil(100×8×5 / (16×4))
    }

    #[test]
    fn one_node_job_gets_only_the_double_width() {
        let w = wl();
        let table = synthesize_moldable(&w);
        let cs = &table[1];
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].nodes, 2);
    }

    #[test]
    fn attached_table_surfaces_through_choices() {
        let mut w = wl();
        let table = synthesize_moldable(&w);
        w.set_moldable(table.clone());
        let cs = w.choices(JobId(0));
        assert_eq!(cs[0], MoldableChoice::rigid(w.job(JobId(0))));
        assert_eq!(&cs[1..], table[0].as_slice());
    }

    #[test]
    fn structural_edits_drop_the_table() {
        let mut w = wl();
        w.set_moldable(synthesize_moldable(&w));
        assert!(w.is_moldable());
        w.window(0, 3);
        assert!(!w.is_moldable());
        assert_eq!(w.choices(JobId(0)).len(), 1);
    }

    #[test]
    fn reshape_never_produces_zero_runtimes() {
        let job = JobBuilder::new(JobId(0))
            .nodes(2)
            .requested(1)
            .runtime(1)
            .build();
        let c = reshape(&job, 4);
        assert!(c.runtime >= 1 && c.requested_time >= 1);
    }
}
