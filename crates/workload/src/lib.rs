//! Job model, trace I/O and synthetic workload generators.
//!
//! This crate provides everything §3 and §6 of the paper need on the input
//! side of a scheduling-system evaluation:
//!
//! * [`job::Job`] — the rigid-job submission record of Example 5 (nodes,
//!   user-provided runtime limit, actual runtime, plus the auxiliary CTC
//!   trace fields listed in §6.1).
//! * [`trace::Workload`] — an ordered stream of jobs with the filtering
//!   operations the paper's administrator applies (drop >256-node jobs,
//!   ignore hardware heterogeneity, time-window cuts).
//! * [`swf`] — a Standard Workload Format parser/writer so real archive
//!   traces (e.g. the actual CTC trace) can be substituted for the synthetic
//!   model without touching any other code.
//! * [`ctc`] — a calibrated synthetic stand-in for the CTC SP2 trace
//!   (July 1996 – May 1997, 79,164 jobs). See DESIGN.md §2 for the
//!   substitution rationale.
//! * [`probabilistic`] — the §6.2 workload: empirical bins extracted from a
//!   base trace, Weibull-distributed submission times, resampled jobs.
//! * [`randomized`] — the §6.3 workload: uniformly random jobs per Table 2.
//! * [`exact`] — the §6.1 variant where user estimates are replaced by the
//!   exact execution times.
//! * [`distr`] — the random-variate samplers (Weibull, log-normal,
//!   empirical) implemented directly over [`rng`], the crate's
//!   self-contained deterministic generator.
//! * [`stats`] — summary statistics used to characterise and compare
//!   workloads (§6.2 consistency checking).
//! * [`source`] — pull-based [`source::JobSource`] streams for the
//!   bounded-memory simulation pipeline: in-memory workload adapters, the
//!   lazy [`swf::SwfStream`] reader, and the unbounded
//!   [`source::ProbabilisticSource`] generator.
//! * [`layout`] — node-class machine layouts, so the §6.1 heterogeneity
//!   the administrator discards can instead be kept and simulated.

pub mod archive;
pub mod calibrate;
pub mod ctc;
pub mod distr;
pub mod exact;
pub mod job;
pub mod layout;
pub mod moldable;
pub mod probabilistic;
pub mod randomized;
pub mod rng;
pub mod source;
pub mod stats;
pub mod swf;
pub mod trace;

pub use job::{CompletionStatus, Job, JobBuilder, JobId, NodeType, Time};
pub use layout::{ClassId, MachineLayout, NodeClassSpec};
pub use moldable::{synthesize_moldable, MoldableChoice};
pub use source::{JobSource, ProbabilisticSource, SourceError, WorkloadSource};
pub use swf::SwfStream;
pub use trace::Workload;

/// Number of batch nodes on the paper's target machine (Institution B).
pub const TARGET_NODES: u32 = 256;

/// Number of batch nodes on the machine the CTC trace was recorded on.
pub const CTC_NODES: u32 = 430;

/// Number of jobs in the paper's CTC workload (Table 1).
pub const CTC_JOB_COUNT: usize = 79_164;

/// Number of jobs in the paper's synthetic workloads (Table 1).
pub const SYNTHETIC_JOB_COUNT: usize = 50_000;
