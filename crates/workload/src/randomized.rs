//! The §6.3 totally randomized workload (Table 2).
//!
//! "Finally, totally randomized data are used as a third input data set.
//! The administrator is aware of the fact that this workload will not
//! represent any real workload on her machine. But she wants to determine
//! the performance of scheduling algorithms even in case of unusual job
//! combinations."
//!
//! Table 2 parameters, all equally (uniformly) distributed:
//!
//! | parameter                         | range            |
//! |-----------------------------------|------------------|
//! | submission of jobs                | ≥ 1 job per hour |
//! | requested number of nodes         | 1 – 256          |
//! | upper limit for the execution time| 5 min – 24 h     |
//! | actual execution time             | 1 s – upper limit|

use crate::job::{CompletionStatus, Job, JobId, NodeType, Time, HOUR};
use crate::rng::{Rng, SmallRng};
use crate::trace::Workload;

/// Table 2 generator parameters (defaults = the paper's values).
#[derive(Clone, Copy, Debug)]
pub struct RandomizedModel {
    /// Maximum inter-arrival gap in seconds ("≥ 1 job per hour" ⇒ 3600).
    pub max_gap: Time,
    /// Maximum node request (machine size, 256).
    pub max_nodes: u32,
    /// Minimum requested-time limit (5 min).
    pub min_limit: Time,
    /// Maximum requested-time limit (24 h).
    pub max_limit: Time,
}

impl Default for RandomizedModel {
    fn default() -> Self {
        RandomizedModel {
            max_gap: HOUR,
            max_nodes: crate::TARGET_NODES,
            min_limit: 300,
            max_limit: 24 * HOUR,
        }
    }
}

impl RandomizedModel {
    /// Generate `n` uniformly random jobs.
    pub fn generate(&self, n: usize, seed: u64) -> Workload {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut clock: Time = 0;
        let mut jobs = Vec::with_capacity(n);
        for i in 0..n {
            clock += rng.random_range(1..=self.max_gap);
            let requested = rng.random_range(self.min_limit..=self.max_limit);
            let runtime = rng.random_range(1..=requested);
            jobs.push(Job {
                id: JobId(i as u32),
                submit: clock,
                nodes: rng.random_range(1..=self.max_nodes),
                requested_time: requested,
                runtime,
                user: rng.random_range(0..1000),
                memory_mb: 0,
                node_type: NodeType::Thin,
                status: CompletionStatus::Completed,
            });
        }
        Workload::new("randomized", self.max_nodes, jobs)
    }
}

/// The paper's randomized workload with default Table 2 parameters.
pub fn randomized_workload(n: usize, seed: u64) -> Workload {
    RandomizedModel::default().generate(n, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::WorkloadStats;

    #[test]
    fn respects_table2_ranges() {
        let w = randomized_workload(5_000, 21);
        for j in w.jobs() {
            assert!((1..=256).contains(&j.nodes));
            assert!((300..=24 * HOUR).contains(&j.requested_time));
            assert!(j.runtime >= 1 && j.runtime <= j.requested_time);
        }
    }

    #[test]
    fn gaps_at_least_one_job_per_hour() {
        let w = randomized_workload(5_000, 22);
        for p in w.jobs().windows(2) {
            assert!(p[1].submit - p[0].submit <= HOUR);
        }
    }

    #[test]
    fn uniform_nodes_mean_near_midpoint() {
        let w = randomized_workload(20_000, 23);
        let s = WorkloadStats::of(&w);
        assert!(
            (s.nodes.mean() - 128.5).abs() < 4.0,
            "mean {}",
            s.nodes.mean()
        );
    }

    #[test]
    fn never_killed_at_limit() {
        // Table 2 draws the actual runtime from [1, limit], so limit kills
        // cannot occur in this workload.
        let w = randomized_workload(5_000, 24);
        assert!(w.jobs().iter().all(|j| !j.killed_at_limit()));
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(
            randomized_workload(100, 25).jobs(),
            randomized_workload(100, 25).jobs()
        );
    }

    #[test]
    fn extreme_load_as_paper_intends() {
        // Mean nodes 128.5 × mean runtime (~limit/2 ≈ 12.2 h/2... actually
        // uniform over [1, limit] with limit uniform: E≈limit_mean/2) over
        // mean gap 30 min: the machine is hopelessly overloaded — the
        // paper's "unusual job combinations" stress case.
        let w = randomized_workload(10_000, 26);
        assert!(w.offered_load() > 5.0, "load {}", w.offered_load());
    }
}
