//! Pareto-front tools for deriving objective functions (§2.2, Figure 1).
//!
//! The paper's recipe for turning policy rules into an objective function:
//!
//! 1. "For a typical set of jobs determine the Pareto-optimal schedules
//!    based on the scheduling policy."
//! 2. "Define a partial order of these schedules."
//! 3. "Derive an objective function that generates this order."
//!
//! [`pareto_front`] implements step 1 for schedules evaluated under k cost
//! criteria (all minimised); [`pareto_ranks`] produces the layered partial
//! order of Figure 1 (rank 0 = dominated interior, higher ranks closer to
//! the ideal point — the paper labels its Pareto points 0, 1, 2 by
//! desirability). [`scalarize`] is step 3's simplest instance: a weighted
//! sum consistent with a given preference.

/// A schedule evaluated under k cost criteria (smaller = better), tagged
/// with an arbitrary label (algorithm name, schedule id, ...).
#[derive(Clone, Debug, PartialEq)]
pub struct Point {
    /// Label identifying the schedule.
    pub label: String,
    /// Cost under each criterion.
    pub costs: Vec<f64>,
}

impl Point {
    /// Convenience constructor.
    pub fn new(label: impl Into<String>, costs: Vec<f64>) -> Self {
        Point {
            label: label.into(),
            costs,
        }
    }
}

/// `a` dominates `b` iff `a` is no worse on every criterion and strictly
/// better on at least one.
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    assert_eq!(a.len(), b.len(), "criterion count mismatch");
    let mut strictly = false;
    for (x, y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strictly = true;
        }
    }
    strictly
}

/// Indices of the Pareto-optimal points (not dominated by any other).
pub fn pareto_front(points: &[Point]) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| {
            !points
                .iter()
                .enumerate()
                .any(|(j, p)| j != i && dominates(&p.costs, &points[i].costs))
        })
        .collect()
}

/// Layered non-domination ranks: rank 1 = the Pareto front, rank 2 = the
/// front after removing rank 1, and so on (NSGA-style peeling). Every
/// point gets a rank ≥ 1; lower rank = closer to optimal.
pub fn pareto_ranks(points: &[Point]) -> Vec<usize> {
    let mut ranks = vec![0usize; points.len()];
    let mut remaining: Vec<usize> = (0..points.len()).collect();
    let mut rank = 1;
    while !remaining.is_empty() {
        let layer: Vec<usize> = remaining
            .iter()
            .copied()
            .filter(|&i| {
                !remaining
                    .iter()
                    .any(|&j| j != i && dominates(&points[j].costs, &points[i].costs))
            })
            .collect();
        assert!(!layer.is_empty(), "non-domination layer cannot be empty");
        for &i in &layer {
            ranks[i] = rank;
        }
        remaining.retain(|i| !layer.contains(i));
        rank += 1;
    }
    ranks
}

/// Weighted-sum scalarization (step 3): cost = Σ wᵢ·cᵢ. Weights must be
/// non-negative with at least one positive entry. A schedule minimising
/// this is always Pareto-optimal for positive weights.
pub fn scalarize(point: &Point, weights: &[f64]) -> f64 {
    assert_eq!(point.costs.len(), weights.len(), "weight count mismatch");
    assert!(weights.iter().all(|&w| w >= 0.0), "negative weight");
    assert!(weights.iter().any(|&w| w > 0.0), "all-zero weights");
    point.costs.iter().zip(weights).map(|(c, w)| c * w).sum()
}

/// Check that an objective function (given as precomputed scalar costs) is
/// *consistent* with the dominance order: whenever point i dominates
/// point j, `costs[i] < costs[j]`. Returns the first violating pair.
///
/// This is the §2.2 sanity check that a derived objective "generates this
/// order".
pub fn order_violations(points: &[Point], scalar_costs: &[f64]) -> Option<(usize, usize)> {
    assert_eq!(points.len(), scalar_costs.len());
    for i in 0..points.len() {
        for j in 0..points.len() {
            if i != j
                && dominates(&points[i].costs, &points[j].costs)
                && scalar_costs[i] >= scalar_costs[j]
            {
                return Some((i, j));
            }
        }
    }
    None
}

/// All pairs where a scalar objective contradicts a non-domination
/// ranking: `(i, j)` such that `ranks[i] < ranks[j]` (i sits on a
/// strictly better layer) but `scalar_costs[i] >= scalar_costs[j]`.
///
/// This is the stronger form of [`order_violations`] the objective
/// *learner* minimises: any non-negative weighting already respects raw
/// dominance, but reproducing the full layered order of
/// [`pareto_ranks`] is a real constraint — the returned pairs are
/// exactly the rows a candidate weighting fails to separate.
pub fn rank_violations(ranks: &[usize], scalar_costs: &[f64]) -> Vec<(usize, usize)> {
    assert_eq!(ranks.len(), scalar_costs.len(), "rank count mismatch");
    let mut out = Vec::new();
    for i in 0..ranks.len() {
        for j in 0..ranks.len() {
            if ranks[i] < ranks[j] && scalar_costs[i] >= scalar_costs[j] {
                out.push((i, j));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1_points() -> Vec<Point> {
        // Figure 1 style: x = availability shortfall for the chemistry
        // course, y = average response time of drug-design jobs.
        vec![
            Point::new("s0", vec![0.0, 600.0]),
            Point::new("s1", vec![100.0, 300.0]),
            Point::new("s2", vec![50.0, 400.0]),
            Point::new("dominated", vec![120.0, 650.0]),
            Point::new("also-dominated", vec![60.0, 500.0]),
        ]
    }

    #[test]
    fn dominance_basic() {
        assert!(dominates(&[1.0, 2.0], &[2.0, 2.0]));
        assert!(dominates(&[1.0, 1.0], &[2.0, 2.0]));
        assert!(!dominates(&[1.0, 3.0], &[2.0, 2.0]));
        assert!(!dominates(&[1.0, 2.0], &[1.0, 2.0])); // equal: no strict gain
    }

    #[test]
    fn front_excludes_dominated() {
        let pts = fig1_points();
        let front = pareto_front(&pts);
        let labels: Vec<&str> = front.iter().map(|&i| pts[i].label.as_str()).collect();
        assert_eq!(labels, vec!["s0", "s1", "s2"]);
    }

    #[test]
    fn ranks_peel_layers() {
        let pts = fig1_points();
        let ranks = pareto_ranks(&pts);
        assert_eq!(ranks[0], 1);
        assert_eq!(ranks[1], 1);
        assert_eq!(ranks[2], 1);
        assert_eq!(ranks[3], 3); // dominated by "also-dominated" too
        assert_eq!(ranks[4], 2);
    }

    #[test]
    fn ranks_of_identical_points_equal() {
        let pts = vec![
            Point::new("a", vec![1.0, 1.0]),
            Point::new("b", vec![1.0, 1.0]),
        ];
        assert_eq!(pareto_ranks(&pts), vec![1, 1]);
    }

    #[test]
    fn scalarize_weighted_sum() {
        let p = Point::new("x", vec![2.0, 10.0]);
        assert_eq!(scalarize(&p, &[1.0, 0.5]), 7.0);
    }

    #[test]
    fn scalarization_minimiser_is_pareto_optimal() {
        let pts = fig1_points();
        let weights = [1.0, 0.4];
        let best = (0..pts.len())
            .min_by(|&a, &b| {
                scalarize(&pts[a], &weights)
                    .partial_cmp(&scalarize(&pts[b], &weights))
                    .unwrap()
            })
            .unwrap();
        assert!(pareto_front(&pts).contains(&best));
    }

    #[test]
    fn positive_weighted_sum_respects_dominance() {
        let pts = fig1_points();
        let costs: Vec<f64> = pts.iter().map(|p| scalarize(p, &[1.0, 0.4])).collect();
        assert_eq!(order_violations(&pts, &costs), None);
    }

    #[test]
    fn order_violations_detects_inconsistency() {
        let pts = vec![
            Point::new("good", vec![1.0, 1.0]),
            Point::new("bad", vec![2.0, 2.0]),
        ];
        // An objective ranking the dominated point better is inconsistent.
        assert_eq!(order_violations(&pts, &[5.0, 1.0]), Some((0, 1)));
    }

    #[test]
    fn empty_input_is_fine() {
        assert!(pareto_front(&[]).is_empty());
        assert!(pareto_ranks(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "all-zero weights")]
    fn zero_weights_rejected() {
        let _ = scalarize(&Point::new("x", vec![1.0]), &[0.0]);
    }

    #[test]
    #[should_panic(expected = "negative weight")]
    fn nan_weights_rejected() {
        // NaN fails the `w >= 0.0` gate, so it is caught by the same
        // assertion as a negative weight — it must never reach the sum.
        let _ = scalarize(&Point::new("x", vec![1.0, 2.0]), &[f64::NAN, 1.0]);
    }

    #[test]
    #[should_panic(expected = "weight count mismatch")]
    fn weight_arity_mismatch_rejected() {
        let _ = scalarize(&Point::new("x", vec![1.0, 2.0]), &[1.0]);
    }

    #[test]
    fn order_violations_on_empty_and_single_point_inputs() {
        // No pair exists, so no pair can violate — both degenerate
        // inputs are vacuously consistent.
        assert_eq!(order_violations(&[], &[]), None);
        let one = [Point::new("only", vec![3.0, 4.0])];
        assert_eq!(order_violations(&one, &[123.0]), None);
    }

    #[test]
    fn ranks_stable_under_duplicate_points() {
        // Duplicates never dominate each other (no strict gain), so they
        // always share a layer — including duplicated *dominated* rows.
        let pts = vec![
            Point::new("a", vec![1.0, 1.0]),
            Point::new("a-copy", vec![1.0, 1.0]),
            Point::new("worse", vec![2.0, 2.0]),
            Point::new("worse-copy", vec![2.0, 2.0]),
        ];
        assert_eq!(pareto_ranks(&pts), vec![1, 1, 2, 2]);
        assert_eq!(pareto_front(&pts), vec![0, 1]);
        // Permuting the duplicates does not change the layer structure.
        let permuted = vec![
            pts[2].clone(),
            pts[0].clone(),
            pts[3].clone(),
            pts[1].clone(),
        ];
        assert_eq!(pareto_ranks(&permuted), vec![2, 1, 2, 1]);
    }

    #[test]
    fn rank_violations_lists_every_inconsistent_pair() {
        // Layers 1 < 2 < 3 with a scalar that inverts the last two and
        // ties the first two.
        let ranks = [1, 2, 3];
        let scalar = [5.0, 5.0, 1.0];
        assert_eq!(
            rank_violations(&ranks, &scalar),
            vec![(0, 1), (0, 2), (1, 2)]
        );
        // A scalar that matches the layer order is clean.
        assert!(rank_violations(&ranks, &[1.0, 2.0, 3.0]).is_empty());
        // Same rank never constrains.
        assert!(rank_violations(&[1, 1], &[9.0, 1.0]).is_empty());
        assert!(rank_violations(&[], &[]).is_empty());
    }
}
