//! Per-user fairness metrics.
//!
//! Example 5's Rule 4 ("every user is allowed at most two batch jobs on
//! the machine at any time") is read by the paper's administrator as "all
//! jobs should be treated equally independent of their resource
//! consumption" — the justification for the unweighted average response
//! time. These metrics check the *outcome* side of that reading: whether
//! a schedule actually treats users comparably.
//!
//! * [`per_user_response`] — each user's mean response time;
//! * [`jain_index`] — Jain's fairness index over those means (1 = all
//!   users equal, 1/n = one user gets everything);
//! * [`worst_to_mean`] — how much worse the unluckiest user fares than
//!   the average.
//!
//! ## Fairness objectives
//!
//! Beyond the diagnostic helpers, three fairness criteria are first-class
//! schedule costs, computed streaming like the other one-pass objectives
//! (see [`crate::streaming`] for the exactness contract):
//!
//! * [`OnlineMaxUserSlowdown`] / [`MaxUserSlowdown`] — the worst user's
//!   mean bounded slowdown: the direct "no user may be starved" reading
//!   of Rule 4;
//! * [`OnlineP95WidthSlowdown`] / [`P95WidthSlowdown`] — the 95th
//!   percentile over job-width groups of the per-width mean bounded
//!   slowdown: wide jobs are the classic backfilling victims, and this
//!   criterion surfaces the widths a policy sacrifices;
//! * [`OnlineSlowdownVariance`] / [`SlowdownVariance`] — the population
//!   variance of per-job bounded slowdown: spread of suffering across
//!   individual jobs, regardless of grouping.
//!
//! All three fold Q52 images of the (≥ 1.0) slowdown terms into exact
//! per-group integer sums, so the accumulated state is identical no
//! matter the event order, and the batch wrappers — which [`replay`] the
//! finished schedule through the same accumulators — agree with the
//! streaming path bit for bit. The variance accumulator needs Σx² of
//! Q52 terms, which exceeds `u128`; a minimal 256-bit integer ([`U256`])
//! keeps that sum exact too.

use crate::objective::Objective;
use crate::streaming::{completed, from_q52, q52, replay, StreamingObjective};
use jobsched_sim::{JobEvent, ScheduleRecord};
use jobsched_workload::Workload;
use std::collections::BTreeMap;

/// Mean response time per user id, for users with at least one job.
/// Returned ordered by user id so downstream float reductions (Jain
/// index sums) are bit-reproducible.
pub fn per_user_response(workload: &Workload, schedule: &ScheduleRecord) -> BTreeMap<u32, f64> {
    let mut totals: BTreeMap<u32, (f64, u32)> = BTreeMap::new();
    for j in workload.jobs() {
        let p = schedule
            .placement(j.id)
            .unwrap_or_else(|| panic!("job {} has no placement", j.id));
        let e = totals.entry(j.user).or_insert((0.0, 0));
        e.0 += p.response_time(j.submit) as f64;
        e.1 += 1;
    }
    totals
        .into_iter()
        .map(|(user, (sum, n))| (user, sum / n as f64))
        .collect()
}

/// Jain's fairness index over a set of non-negative allocations:
/// `(Σx)² / (n·Σx²)`. 1 = perfectly equal; 1/n = maximally unequal.
/// Empty input yields 1 (nothing to be unfair about).
pub fn jain_index(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    let mut n = 0usize;
    for v in values {
        assert!(v >= 0.0 && v.is_finite(), "allocations must be finite, ≥ 0");
        sum += v;
        sum_sq += v * v;
        n += 1;
    }
    if n == 0 || sum_sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (n as f64 * sum_sq)
}

/// Jain index over per-user mean *response times*. Note the inversion:
/// response time is a cost, so this measures whether the *suffering* is
/// evenly spread — which is the natural reading of "treated equally".
pub fn user_fairness(workload: &Workload, schedule: &ScheduleRecord) -> f64 {
    jain_index(per_user_response(workload, schedule).into_values())
}

/// Ratio of the worst user's mean response to the mean over users
/// (≥ 1; 1 = perfectly even). Empty workloads yield 1.
pub fn worst_to_mean(workload: &Workload, schedule: &ScheduleRecord) -> f64 {
    let per_user = per_user_response(workload, schedule);
    if per_user.is_empty() {
        return 1.0;
    }
    let worst = per_user.values().cloned().fold(0.0, f64::max);
    let mean = per_user.values().sum::<f64>() / per_user.len() as f64;
    if mean == 0.0 {
        1.0
    } else {
        worst / mean
    }
}

/// The bounded-slowdown term of one completed execution (≥ 1.0), with
/// the same 10-second clamp as
/// [`OnlineBoundedSlowdown`](crate::streaming::OnlineBoundedSlowdown).
fn slowdown_term(o: &jobsched_sim::JobOutcome) -> f64 {
    let resp = o.response_time() as f64;
    let run = (o.run_time() as f64).max(crate::streaming::OnlineBoundedSlowdown::TAU);
    (resp / run).max(1.0)
}

/// Exact Q52 sum and count per group key — the shared state of the
/// grouped fairness accumulators. Order-independent by construction.
#[derive(Clone, Debug, Default)]
struct GroupedSlowdown<K: Ord + Copy> {
    groups: BTreeMap<K, (u128, u64)>,
}

impl<K: Ord + Copy> GroupedSlowdown<K> {
    fn observe(&mut self, key: K, term: f64) {
        let e = self.groups.entry(key).or_insert((0, 0));
        e.0 += q52(term);
        e.1 += 1;
    }

    /// Per-group mean slowdowns, in ascending key order. Each mean is the
    /// exact sum with one rounding step plus one division.
    fn means(&self) -> impl Iterator<Item = f64> + '_ {
        self.groups
            .values()
            .map(|&(sum, n)| from_q52(sum) / n as f64)
    }
}

/// Online maximum per-user mean bounded slowdown (lower is better; ≥ 1
/// once any job completed, 0 on an empty stream).
#[derive(Clone, Debug, Default)]
pub struct OnlineMaxUserSlowdown {
    grouped: GroupedSlowdown<u32>,
}

impl OnlineMaxUserSlowdown {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }
}

impl StreamingObjective for OnlineMaxUserSlowdown {
    fn name(&self) -> &'static str {
        "max-user-bsld"
    }

    fn observe(&mut self, event: &JobEvent) {
        if let Some(o) = completed(event) {
            self.grouped.observe(o.user, slowdown_term(o));
        }
    }

    fn cost(&self) -> f64 {
        self.grouped.means().fold(0.0, f64::max)
    }
}

/// Online 95th-percentile per-width mean bounded slowdown: group jobs by
/// node count, take each group's mean slowdown, and report the value at
/// the p95 position of the ascending group ranking (nearest-rank,
/// `⌈0.95·(g−1)⌉` for g groups — deterministic, no interpolation).
#[derive(Clone, Debug, Default)]
pub struct OnlineP95WidthSlowdown {
    grouped: GroupedSlowdown<u32>,
}

impl OnlineP95WidthSlowdown {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }
}

impl StreamingObjective for OnlineP95WidthSlowdown {
    fn name(&self) -> &'static str {
        "p95-width-bsld"
    }

    fn observe(&mut self, event: &JobEvent) {
        if let Some(o) = completed(event) {
            self.grouped.observe(o.nodes, slowdown_term(o));
        }
    }

    fn cost(&self) -> f64 {
        let mut means: Vec<f64> = self.grouped.means().collect();
        if means.is_empty() {
            return 0.0;
        }
        means.sort_by(f64::total_cmp);
        means[(95 * (means.len() - 1)).div_ceil(100)]
    }
}

/// Minimal 256-bit unsigned integer: just enough to hold an exact sum of
/// squared Q52 slowdown terms (each square needs up to ~2¹⁵⁰).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct U256 {
    hi: u128,
    lo: u128,
}

impl U256 {
    /// Full widening product of two `u128`s via 64-bit limbs.
    fn mul(a: u128, b: u128) -> U256 {
        const MASK: u128 = u64::MAX as u128;
        let (a0, a1) = (a & MASK, a >> 64);
        let (b0, b1) = (b & MASK, b >> 64);
        let ll = a0 * b0;
        let (mid, mid_carry) = (a0 * b1).overflowing_add(a1 * b0);
        let (lo, lo_carry) = ll.overflowing_add(mid << 64);
        let hi = (a1 * b1) + (mid >> 64) + ((mid_carry as u128) << 64) + lo_carry as u128;
        U256 { hi, lo }
    }

    fn add_assign(&mut self, other: U256) {
        let (lo, carry) = self.lo.overflowing_add(other.lo);
        self.lo = lo;
        self.hi = self.hi + other.hi + carry as u128;
    }

    /// One deterministic rounding step at the end of accumulation.
    fn to_f64(self) -> f64 {
        self.hi as f64 * 2f64.powi(128) + self.lo as f64
    }
}

/// Online population variance of per-job bounded slowdown. State is the
/// exact Q52 sum, the exact Q104 sum of squares (in a [`U256`]) and the
/// count; the `E[x²] − E[x]²` combination happens once, at [`cost`]
/// time, identically for the batch and streaming paths.
///
/// [`cost`]: StreamingObjective::cost
#[derive(Clone, Copy, Debug, Default)]
pub struct OnlineSlowdownVariance {
    sum_q52: u128,
    sum_sq_q104: U256,
    n: u64,
}

impl OnlineSlowdownVariance {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }
}

impl StreamingObjective for OnlineSlowdownVariance {
    fn name(&self) -> &'static str {
        "bsld-variance"
    }

    fn observe(&mut self, event: &JobEvent) {
        if let Some(o) = completed(event) {
            let term = q52(slowdown_term(o));
            self.sum_q52 += term;
            self.sum_sq_q104.add_assign(U256::mul(term, term));
            self.n += 1;
        }
    }

    fn cost(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let n = self.n as f64;
        let mean = from_q52(self.sum_q52) / n;
        let mean_sq = self.sum_sq_q104.to_f64() / 2f64.powi(104) / n;
        // Guard the subtraction: with all terms equal the float images
        // cancel to a tiny negative residual at worst.
        (mean_sq - mean * mean).max(0.0)
    }
}

/// Batch maximum per-user mean bounded slowdown (Rule 4 fairness).
#[derive(Clone, Copy, Debug, Default)]
pub struct MaxUserSlowdown;

impl Objective for MaxUserSlowdown {
    fn name(&self) -> &'static str {
        "max-user-bsld"
    }

    fn cost(&self, workload: &Workload, schedule: &ScheduleRecord) -> f64 {
        let mut acc = OnlineMaxUserSlowdown::new();
        replay(workload, schedule, &mut acc);
        acc.cost()
    }
}

/// Batch 95th-percentile per-width mean bounded slowdown.
#[derive(Clone, Copy, Debug, Default)]
pub struct P95WidthSlowdown;

impl Objective for P95WidthSlowdown {
    fn name(&self) -> &'static str {
        "p95-width-bsld"
    }

    fn cost(&self, workload: &Workload, schedule: &ScheduleRecord) -> f64 {
        let mut acc = OnlineP95WidthSlowdown::new();
        replay(workload, schedule, &mut acc);
        acc.cost()
    }
}

/// Batch population variance of per-job bounded slowdown.
#[derive(Clone, Copy, Debug, Default)]
pub struct SlowdownVariance;

impl Objective for SlowdownVariance {
    fn name(&self) -> &'static str {
        "bsld-variance"
    }

    fn cost(&self, workload: &Workload, schedule: &ScheduleRecord) -> f64 {
        let mut acc = OnlineSlowdownVariance::new();
        replay(workload, schedule, &mut acc);
        acc.cost()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jobsched_sim::JobOutcome;
    use jobsched_workload::{JobBuilder, JobId, Time};

    fn fixture(users: &[u32], waits: &[u64]) -> (Workload, ScheduleRecord) {
        assert_eq!(users.len(), waits.len());
        let jobs: Vec<_> = users
            .iter()
            .map(|&u| {
                JobBuilder::new(JobId(0))
                    .submit(0)
                    .nodes(1)
                    .requested(100)
                    .runtime(100)
                    .user(u)
                    .build()
            })
            .collect();
        let w = Workload::new("f", 64, jobs);
        let mut s = ScheduleRecord::new(64, w.len());
        for (j, &wait) in w.jobs().iter().zip(waits) {
            s.place(j.id, wait, wait + 100);
        }
        (w, s)
    }

    #[test]
    fn per_user_means() {
        let (w, s) = fixture(&[0, 0, 1], &[0, 200, 100]);
        let m = per_user_response(&w, &s);
        // user 0: responses 100 and 300 → 200; user 1: 200.
        assert_eq!(m[&0], 200.0);
        assert_eq!(m[&1], 200.0);
    }

    #[test]
    fn jain_equal_is_one() {
        assert!((jain_index([5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jain_single_hog_is_one_over_n() {
        let idx = jain_index([1.0, 0.0, 0.0, 0.0]);
        assert!((idx - 0.25).abs() < 1e-12);
    }

    #[test]
    fn jain_empty_and_zero() {
        assert_eq!(jain_index(std::iter::empty()), 1.0);
        assert_eq!(jain_index([0.0, 0.0]), 1.0);
    }

    #[test]
    fn user_fairness_of_even_schedule() {
        let (w, s) = fixture(&[0, 1, 2], &[50, 50, 50]);
        assert!((user_fairness(&w, &s) - 1.0).abs() < 1e-12);
        assert!((worst_to_mean(&w, &s) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn starved_user_detected() {
        let (w, s) = fixture(&[0, 1], &[0, 10_000]);
        assert!(user_fairness(&w, &s) < 0.6);
        assert!(worst_to_mean(&w, &s) > 1.9);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn jain_rejects_negative() {
        let _ = jain_index([-1.0]);
    }

    /// Completed execution: submitted at 0, waited `wait`, ran `run`
    /// seconds on `nodes` nodes for `user`.
    fn finished(id: u32, wait: Time, run: Time, nodes: u32, user: u32) -> JobEvent {
        JobEvent::Finished(JobOutcome {
            id: JobId(id),
            submit: 0,
            start: wait,
            completion: wait + run,
            nodes,
            requested_time: run,
            user,
        })
    }

    #[test]
    fn max_user_slowdown_picks_the_starved_user() {
        let mut acc = OnlineMaxUserSlowdown::new();
        // User 0: slowdown 1 (no wait); user 1: (900+100)/100 = 10.
        acc.observe(&finished(0, 0, 100, 1, 0));
        acc.observe(&finished(1, 900, 100, 1, 1));
        assert_eq!(acc.cost(), 10.0);
        // A second user-1 job at slowdown 2 drags that user's mean to 6.
        acc.observe(&finished(2, 100, 100, 1, 1));
        assert_eq!(acc.cost(), 6.0);
    }

    #[test]
    fn p95_width_slowdown_ranks_group_means() {
        let mut acc = OnlineP95WidthSlowdown::new();
        // Three width groups with means 1, 3 and 5 → p95 index
        // ceil(0.95·2) = 2 → the worst group.
        acc.observe(&finished(0, 0, 100, 1, 0));
        acc.observe(&finished(1, 200, 100, 2, 0));
        acc.observe(&finished(2, 400, 100, 4, 0));
        assert_eq!(acc.cost(), 5.0);
    }

    #[test]
    fn slowdown_variance_is_zero_for_identical_terms_and_exact_otherwise() {
        let mut acc = OnlineSlowdownVariance::new();
        acc.observe(&finished(0, 100, 100, 1, 0));
        acc.observe(&finished(1, 100, 100, 1, 1));
        assert_eq!(acc.cost(), 0.0);
        // Terms now {2, 2, 8}: mean 4, E[x²] = 24 → variance 8.
        acc.observe(&finished(2, 700, 100, 1, 2));
        assert_eq!(acc.cost(), 8.0);
    }

    #[test]
    fn fairness_accumulators_are_order_independent() {
        let events: Vec<JobEvent> = (0..300)
            .map(|i| {
                finished(
                    i,
                    (i as Time * 37) % 1000,
                    50 + (i as Time % 90),
                    (i % 7) + 1,
                    i % 5,
                )
            })
            .collect();
        let run = |rev: bool| -> Vec<f64> {
            let mut max_user = OnlineMaxUserSlowdown::new();
            let mut p95 = OnlineP95WidthSlowdown::new();
            let mut var = OnlineSlowdownVariance::new();
            let iter: Box<dyn Iterator<Item = &JobEvent>> = if rev {
                Box::new(events.iter().rev())
            } else {
                Box::new(events.iter())
            };
            for e in iter {
                max_user.observe(e);
                p95.observe(e);
                var.observe(e);
            }
            vec![max_user.cost(), p95.cost(), var.cost()]
        };
        let (fwd, bwd) = (run(false), run(true));
        for (a, b) in fwd.iter().zip(&bwd) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn empty_fairness_accumulators_cost_zero() {
        assert_eq!(OnlineMaxUserSlowdown::new().cost(), 0.0);
        assert_eq!(OnlineP95WidthSlowdown::new().cost(), 0.0);
        assert_eq!(OnlineSlowdownVariance::new().cost(), 0.0);
    }

    #[test]
    fn u256_widening_mul_matches_u128_where_it_fits() {
        for &(a, b) in &[(0u128, 0u128), (1, u64::MAX as u128), (1 << 63, 1 << 63)] {
            let p = U256::mul(a, b);
            assert_eq!((p.hi, p.lo), (0, a * b));
        }
        // Above 2¹²⁸ the high limb carries: (2⁶⁴)·(2⁶⁴)·(2⁶⁴·2⁶⁴) …
        let p = U256::mul(1 << 100, 1 << 100);
        assert_eq!((p.hi, p.lo), (1 << 72, 0));
        let max = U256::mul(u128::MAX, u128::MAX);
        assert_eq!((max.hi, max.lo), (u128::MAX - 1, 1));
    }

    #[test]
    fn batch_fairness_wrappers_replay_the_schedule() {
        // Two users on disjoint jobs: user 1 waits 900 s on its single
        // 100 s job → per-user slowdowns {1, 10}.
        let jobs: Vec<_> = [(0u32, 0u64), (1, 900)]
            .iter()
            .map(|&(u, _)| {
                JobBuilder::new(JobId(0))
                    .submit(0)
                    .nodes(1)
                    .requested(100)
                    .runtime(100)
                    .user(u)
                    .build()
            })
            .collect();
        let w = Workload::new("f", 4, jobs);
        let mut s = ScheduleRecord::new(4, w.len());
        s.place(JobId(0), 0, 100);
        s.place(JobId(1), 900, 1000);
        assert_eq!(MaxUserSlowdown.cost(&w, &s), 10.0);
        // One width group (all jobs 1 node) → p95 = the group mean 5.5.
        assert_eq!(P95WidthSlowdown.cost(&w, &s), 5.5);
        // Terms {1, 10}: mean 5.5, E[x²] = 50.5 → variance 20.25.
        assert_eq!(SlowdownVariance.cost(&w, &s), 20.25);
    }
}
