//! Per-user fairness metrics.
//!
//! Example 5's Rule 4 ("every user is allowed at most two batch jobs on
//! the machine at any time") is read by the paper's administrator as "all
//! jobs should be treated equally independent of their resource
//! consumption" — the justification for the unweighted average response
//! time. These metrics check the *outcome* side of that reading: whether
//! a schedule actually treats users comparably.
//!
//! * [`per_user_response`] — each user's mean response time;
//! * [`jain_index`] — Jain's fairness index over those means (1 = all
//!   users equal, 1/n = one user gets everything);
//! * [`worst_to_mean`] — how much worse the unluckiest user fares than
//!   the average.

use jobsched_sim::ScheduleRecord;
use jobsched_workload::Workload;
use std::collections::BTreeMap;

/// Mean response time per user id, for users with at least one job.
/// Returned ordered by user id so downstream float reductions (Jain
/// index sums) are bit-reproducible.
pub fn per_user_response(workload: &Workload, schedule: &ScheduleRecord) -> BTreeMap<u32, f64> {
    let mut totals: BTreeMap<u32, (f64, u32)> = BTreeMap::new();
    for j in workload.jobs() {
        let p = schedule
            .placement(j.id)
            .unwrap_or_else(|| panic!("job {} has no placement", j.id));
        let e = totals.entry(j.user).or_insert((0.0, 0));
        e.0 += p.response_time(j.submit) as f64;
        e.1 += 1;
    }
    totals
        .into_iter()
        .map(|(user, (sum, n))| (user, sum / n as f64))
        .collect()
}

/// Jain's fairness index over a set of non-negative allocations:
/// `(Σx)² / (n·Σx²)`. 1 = perfectly equal; 1/n = maximally unequal.
/// Empty input yields 1 (nothing to be unfair about).
pub fn jain_index(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    let mut n = 0usize;
    for v in values {
        assert!(v >= 0.0 && v.is_finite(), "allocations must be finite, ≥ 0");
        sum += v;
        sum_sq += v * v;
        n += 1;
    }
    if n == 0 || sum_sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (n as f64 * sum_sq)
}

/// Jain index over per-user mean *response times*. Note the inversion:
/// response time is a cost, so this measures whether the *suffering* is
/// evenly spread — which is the natural reading of "treated equally".
pub fn user_fairness(workload: &Workload, schedule: &ScheduleRecord) -> f64 {
    jain_index(per_user_response(workload, schedule).into_values())
}

/// Ratio of the worst user's mean response to the mean over users
/// (≥ 1; 1 = perfectly even). Empty workloads yield 1.
pub fn worst_to_mean(workload: &Workload, schedule: &ScheduleRecord) -> f64 {
    let per_user = per_user_response(workload, schedule);
    if per_user.is_empty() {
        return 1.0;
    }
    let worst = per_user.values().cloned().fold(0.0, f64::max);
    let mean = per_user.values().sum::<f64>() / per_user.len() as f64;
    if mean == 0.0 {
        1.0
    } else {
        worst / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jobsched_workload::{JobBuilder, JobId};

    fn fixture(users: &[u32], waits: &[u64]) -> (Workload, ScheduleRecord) {
        assert_eq!(users.len(), waits.len());
        let jobs: Vec<_> = users
            .iter()
            .map(|&u| {
                JobBuilder::new(JobId(0))
                    .submit(0)
                    .nodes(1)
                    .requested(100)
                    .runtime(100)
                    .user(u)
                    .build()
            })
            .collect();
        let w = Workload::new("f", 64, jobs);
        let mut s = ScheduleRecord::new(64, w.len());
        for (j, &wait) in w.jobs().iter().zip(waits) {
            s.place(j.id, wait, wait + 100);
        }
        (w, s)
    }

    #[test]
    fn per_user_means() {
        let (w, s) = fixture(&[0, 0, 1], &[0, 200, 100]);
        let m = per_user_response(&w, &s);
        // user 0: responses 100 and 300 → 200; user 1: 200.
        assert_eq!(m[&0], 200.0);
        assert_eq!(m[&1], 200.0);
    }

    #[test]
    fn jain_equal_is_one() {
        assert!((jain_index([5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jain_single_hog_is_one_over_n() {
        let idx = jain_index([1.0, 0.0, 0.0, 0.0]);
        assert!((idx - 0.25).abs() < 1e-12);
    }

    #[test]
    fn jain_empty_and_zero() {
        assert_eq!(jain_index(std::iter::empty()), 1.0);
        assert_eq!(jain_index([0.0, 0.0]), 1.0);
    }

    #[test]
    fn user_fairness_of_even_schedule() {
        let (w, s) = fixture(&[0, 1, 2], &[50, 50, 50]);
        assert!((user_fairness(&w, &s) - 1.0).abs() < 1e-12);
        assert!((worst_to_mean(&w, &s) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn starved_user_detected() {
        let (w, s) = fixture(&[0, 1], &[0, 10_000]);
        assert!(user_fairness(&w, &s) < 0.6);
        assert!(worst_to_mean(&w, &s) > 1.9);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn jain_rejects_negative() {
        let _ = jain_index([-1.0]);
    }
}
