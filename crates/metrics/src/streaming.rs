//! Online (one-pass) objective accumulators.
//!
//! The streaming counterpart of [`crate::objective`]: a
//! [`StreamingObjective`] folds the pipeline's lifecycle events into O(1)
//! state and produces the schedule cost at any point, without a
//! [`ScheduleRecord`](jobsched_sim::ScheduleRecord) or the workload in
//! memory. The batch [`Objective`](crate::objective::Objective) impls are
//! thin wrappers that [`replay`] a finished schedule through these same
//! accumulators, so batch and streaming results are **identical by
//! construction** — not merely close.
//!
//! ## Exactness
//!
//! Floating-point addition is not associative, and a stream delivers
//! completions in time order while the batch pass walks jobs in id order.
//! Summing f64s would make the two paths differ in the last ulp on large
//! workloads. Every accumulator therefore sums in *exact* integer
//! arithmetic, which is order-independent:
//!
//! * response times, busy areas and weighted completions are products of
//!   `u64`/`u32` job fields — summed exactly in `u128`;
//! * bounded-slowdown terms are genuine fractions, but every term is
//!   ≥ 1.0, so its ulp is ≥ 2⁻⁵²: the term *is* an exact multiple of
//!   2⁻⁵², and [`q52`] converts it losslessly to Q52 fixed point for an
//!   exact `u128` sum.
//!
//! The single rounding step happens at the end (`u128 → f64`, then one
//! division), identically for both paths.
//!
//! ## Scope
//!
//! Costs are defined over *completed executions* (the paper's objectives
//! assume the finished schedule). A cancelled-while-queued job never
//! completes and contributes nothing; a cancelled-while-running job
//! contributes its truncated execution. On fault-free runs every
//! accumulator matches its batch objective bit for bit — the
//! `streaming_equivalence` suite pins that across all thirteen paper
//! algorithm combinations.

use jobsched_sim::{JobEvent, JobOutcome, ScheduleRecord, SimObserver};
use jobsched_workload::{JobId, Time, Workload};
use std::collections::{BTreeMap, BTreeSet};

/// A schedule cost computed online, one lifecycle event at a time.
/// Lower is better, matching [`crate::objective::Objective`].
pub trait StreamingObjective {
    /// Name used in reports ("ART", "AWRT", ...).
    fn name(&self) -> &'static str;

    /// Fold one lifecycle event into the accumulator.
    fn observe(&mut self, event: &JobEvent);

    /// The cost over everything observed so far.
    fn cost(&self) -> f64;
}

/// Adapter: mount a [`StreamingObjective`] as a pipeline event sink.
///
/// (A blanket `impl SimObserver for T: StreamingObjective` would collide
/// with foreign impls; the newtype keeps both traits open.)
pub struct StreamingObserver<'a>(pub &'a mut dyn StreamingObjective);

impl SimObserver for StreamingObserver<'_> {
    fn on_event(&mut self, event: &JobEvent) {
        self.0.observe(event);
    }
}

/// The completed execution inside an event, if it carries one.
pub(crate) fn completed(event: &JobEvent) -> Option<&JobOutcome> {
    match event {
        JobEvent::Finished(o) => Some(o),
        JobEvent::Cancelled { run: Some(o), .. } => Some(o),
        _ => None,
    }
}

/// Feed a finished schedule through a streaming accumulator, job by job.
/// This is how every batch [`Objective`](crate::objective::Objective)
/// now computes its cost. Panics on an incomplete schedule, like the
/// batch objectives always have.
pub fn replay(
    workload: &Workload,
    schedule: &ScheduleRecord,
    objective: &mut dyn StreamingObjective,
) {
    for j in workload.jobs() {
        let p = schedule
            .placement(j.id)
            .unwrap_or_else(|| panic!("job {} has no placement; schedule incomplete", j.id));
        objective.observe(&JobEvent::Finished(JobOutcome {
            id: j.id,
            submit: j.submit,
            start: p.start,
            completion: p.completion,
            nodes: j.nodes,
            requested_time: j.requested_time,
            user: j.user,
        }));
    }
}

/// Lossless Q52 fixed-point image of a float `x ≥ 1.0`: returns
/// `x · 2⁵²` exactly. Any finite f64 ≥ 1.0 has an ulp ≥ 2⁻⁵², so the
/// result is an integer and sums of such images are exact (and therefore
/// order-independent).
pub(crate) fn q52(x: f64) -> u128 {
    debug_assert!(x.is_finite() && x >= 1.0, "q52 needs x >= 1.0, got {x}");
    let bits = x.to_bits();
    let exp = ((bits >> 52) & 0x7ff) as i64 - 1023;
    let mant = (bits & ((1u64 << 52) - 1)) | (1u64 << 52);
    debug_assert!((0..=75).contains(&exp), "q52 exponent {exp} out of range");
    (mant as u128) << exp
}

/// Inverse scaling of a [`q52`] sum: `sum / 2⁵²` with one rounding step.
pub(crate) fn from_q52(sum: u128) -> f64 {
    // Division by a power of two only touches the exponent: exact.
    (sum as f64) / (1u64 << 52) as f64
}

/// Online average response time (Rule 5 objective; weight ≡ 1).
#[derive(Clone, Copy, Debug, Default)]
pub struct OnlineArt {
    sum_response: u128,
    n: u64,
}

impl OnlineArt {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }
}

impl StreamingObjective for OnlineArt {
    fn name(&self) -> &'static str {
        "ART"
    }

    fn observe(&mut self, event: &JobEvent) {
        if let Some(o) = completed(event) {
            self.sum_response += o.response_time() as u128;
            self.n += 1;
        }
    }

    fn cost(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        self.sum_response as f64 / self.n as f64
    }
}

/// Online average weighted response time (Rule 6 objective; weight =
/// actual resource consumption `run time × nodes`).
#[derive(Clone, Copy, Debug, Default)]
pub struct OnlineAwrt {
    sum_weighted: u128,
    n: u64,
}

impl OnlineAwrt {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }
}

impl StreamingObjective for OnlineAwrt {
    fn name(&self) -> &'static str {
        "AWRT"
    }

    fn observe(&mut self, event: &JobEvent) {
        if let Some(o) = completed(event) {
            let weight = o.run_time() as u128 * o.nodes as u128;
            self.sum_weighted += weight * o.response_time() as u128;
            self.n += 1;
        }
    }

    fn cost(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        self.sum_weighted as f64 / self.n as f64
    }
}

/// Online makespan: completion time of the last job seen.
#[derive(Clone, Copy, Debug, Default)]
pub struct OnlineMakespan {
    last: Time,
}

impl OnlineMakespan {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// The makespan as a simulation instant (0 before any completion).
    pub fn value(&self) -> Time {
        self.last
    }
}

impl StreamingObjective for OnlineMakespan {
    fn name(&self) -> &'static str {
        "makespan"
    }

    fn observe(&mut self, event: &JobEvent) {
        if let Some(o) = completed(event) {
            self.last = self.last.max(o.completion);
        }
    }

    fn cost(&self) -> f64 {
        self.last as f64
    }
}

/// Online negated utilization over `[0, makespan]` (lower = busier).
#[derive(Clone, Debug)]
pub struct OnlineUtilization {
    machine_nodes: u32,
    busy: u128,
    makespan: Time,
    /// Open allocation span per running job (`Started`/`Resumed` opens,
    /// `Preempted` or completion closes). Bounded by in-flight jobs.
    open: BTreeMap<JobId, (Time, u32)>,
    /// Jobs that were preempted at least once: their completion event
    /// must not fall back to the envelope charge (the closed spans were
    /// already accumulated).
    preempted: BTreeSet<JobId>,
}

impl OnlineUtilization {
    /// Accumulator for a machine of `machine_nodes`.
    pub fn new(machine_nodes: u32) -> Self {
        OnlineUtilization {
            machine_nodes,
            busy: 0,
            makespan: 0,
            open: BTreeMap::new(),
            preempted: BTreeSet::new(),
        }
    }

    /// The utilization itself (a fraction in `[0, 1]`), rather than the
    /// negated cost form.
    pub fn utilization(&self) -> f64 {
        if self.machine_nodes == 0 || self.busy == 0 {
            return 0.0;
        }
        let span = self.makespan.max(1) as f64;
        self.busy as f64 / (span * self.machine_nodes as f64)
    }
}

impl StreamingObjective for OnlineUtilization {
    fn name(&self) -> &'static str {
        "neg-utilization"
    }

    fn observe(&mut self, event: &JobEvent) {
        match event {
            JobEvent::Started { id, at, nodes } | JobEvent::Resumed { id, at, nodes } => {
                self.open.insert(*id, (*at, *nodes));
            }
            JobEvent::Preempted { id, at, .. } => {
                // Close the open span; charge exactly the time the job
                // actually held its nodes (not the preempted gap).
                if let Some((start, w)) = self.open.remove(id) {
                    self.busy += (*at - start) as u128 * w as u128;
                    self.makespan = self.makespan.max(*at);
                    self.preempted.insert(*id);
                }
            }
            _ => {
                if let Some(o) = completed(event) {
                    if let Some((start, w)) = self.open.remove(&o.id) {
                        // Final span: charge from the last (re)start, not
                        // the envelope — identical for never-preempted
                        // jobs, where the span start IS `o.start`.
                        self.busy += (o.completion - start) as u128 * w as u128;
                        self.preempted.remove(&o.id);
                    } else if !self.preempted.remove(&o.id) {
                        // Replay path (no Started events): the envelope
                        // equals the single charged span.
                        self.busy += o.run_time() as u128 * o.nodes as u128;
                    }
                    // else: cancelled while preempted — all its spans
                    // were already closed and charged.
                    self.makespan = self.makespan.max(o.completion);
                }
            }
        }
    }

    fn cost(&self) -> f64 {
        let u = self.utilization();
        if u == 0.0 {
            0.0 // nothing utilized; never NaN, never −0.0
        } else {
            -u
        }
    }
}

/// Online idle node-seconds within a fixed time frame (the literal Rule 6
/// criterion §4 starts from).
#[derive(Clone, Copy, Debug)]
pub struct OnlineIdleTime {
    from: Time,
    to: Time,
    machine_nodes: u32,
    busy: u128,
}

impl OnlineIdleTime {
    /// Accumulator over the frame `[from, to)` on `machine_nodes` nodes.
    /// Panics on an empty frame, like the batch objective.
    pub fn new(from: Time, to: Time, machine_nodes: u32) -> Self {
        assert!(from < to, "empty idle-time frame");
        OnlineIdleTime {
            from,
            to,
            machine_nodes,
            busy: 0,
        }
    }
}

impl StreamingObjective for OnlineIdleTime {
    fn name(&self) -> &'static str {
        "idle-time"
    }

    fn observe(&mut self, event: &JobEvent) {
        if let Some(o) = completed(event) {
            let lo = o.start.max(self.from);
            let hi = o.completion.min(self.to);
            if hi > lo {
                self.busy += (hi - lo) as u128 * o.nodes as u128;
            }
        }
    }

    fn cost(&self) -> f64 {
        let capacity = (self.to - self.from) as f64 * self.machine_nodes as f64;
        capacity - self.busy as f64
    }
}

/// Online Σ wⱼ·Cⱼ (Smith's criterion; weight = run time × nodes).
#[derive(Clone, Copy, Debug, Default)]
pub struct OnlineSumWeightedCompletion {
    sum: u128,
}

impl OnlineSumWeightedCompletion {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }
}

impl StreamingObjective for OnlineSumWeightedCompletion {
    fn name(&self) -> &'static str {
        "sum-wC"
    }

    fn observe(&mut self, event: &JobEvent) {
        if let Some(o) = completed(event) {
            let weight = o.run_time() as u128 * o.nodes as u128;
            self.sum += weight * o.completion as u128;
        }
    }

    fn cost(&self) -> f64 {
        self.sum as f64
    }
}

/// Online average bounded slowdown (10-second threshold).
#[derive(Clone, Copy, Debug, Default)]
pub struct OnlineBoundedSlowdown {
    sum_q52: u128,
    n: u64,
}

impl OnlineBoundedSlowdown {
    /// Conventional threshold below which runtimes are clamped.
    pub const TAU: f64 = 10.0;

    /// Fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }
}

impl StreamingObjective for OnlineBoundedSlowdown {
    fn name(&self) -> &'static str {
        "bounded-slowdown"
    }

    fn observe(&mut self, event: &JobEvent) {
        if let Some(o) = completed(event) {
            let resp = o.response_time() as f64;
            let run = (o.run_time() as f64).max(Self::TAU);
            // Each term is ≥ 1.0, so its Q52 image is exact (see q52).
            self.sum_q52 += q52((resp / run).max(1.0));
            self.n += 1;
        }
    }

    fn cost(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        from_q52(self.sum_q52) / self.n as f64
    }
}

/// Point-in-time view of a live run's metrics — what a serving daemon
/// returns from its `metrics` command. Plain `Copy` data, cheap to take
/// at any instant; the underlying accumulators keep running.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MetricsSnapshot {
    /// Jobs that entered the system.
    pub jobs_submitted: u64,
    /// Jobs that began executing.
    pub jobs_started: u64,
    /// Jobs that ran to (possibly truncated) completion.
    pub jobs_finished: u64,
    /// Cancellations applied (any lifecycle phase).
    pub jobs_cancelled: u64,
    /// Online average response time over completed executions.
    pub art: f64,
    /// Online average weighted response time.
    pub awrt: f64,
    /// Online average bounded slowdown.
    pub bounded_slowdown: f64,
    /// Utilization fraction over `[0, makespan]`.
    pub utilization: f64,
    /// Completion time of the last finished job.
    pub makespan: Time,
}

/// Bundle of the standard online accumulators plus lifecycle counters,
/// mountable directly as a pipeline/daemon [`SimObserver`]. This is the
/// `metrics` surface of the serving daemon: one observer, one
/// [`MetricsSnapshot`] per query.
#[derive(Clone, Debug)]
pub struct OnlineMetrics {
    art: OnlineArt,
    awrt: OnlineAwrt,
    slowdown: OnlineBoundedSlowdown,
    util: OnlineUtilization,
    makespan: OnlineMakespan,
    jobs_submitted: u64,
    jobs_started: u64,
    jobs_finished: u64,
    jobs_cancelled: u64,
}

impl OnlineMetrics {
    /// Fresh accumulators for a machine of `machine_nodes`.
    pub fn new(machine_nodes: u32) -> Self {
        OnlineMetrics {
            art: OnlineArt::new(),
            awrt: OnlineAwrt::new(),
            slowdown: OnlineBoundedSlowdown::new(),
            util: OnlineUtilization::new(machine_nodes),
            makespan: OnlineMakespan::new(),
            jobs_submitted: 0,
            jobs_started: 0,
            jobs_finished: 0,
            jobs_cancelled: 0,
        }
    }

    /// The current values, as one consistent copy.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            jobs_submitted: self.jobs_submitted,
            jobs_started: self.jobs_started,
            jobs_finished: self.jobs_finished,
            jobs_cancelled: self.jobs_cancelled,
            art: self.art.cost(),
            awrt: self.awrt.cost(),
            bounded_slowdown: self.slowdown.cost(),
            utilization: self.util.utilization(),
            makespan: self.makespan.value(),
        }
    }
}

impl SimObserver for OnlineMetrics {
    fn on_event(&mut self, event: &JobEvent) {
        match event {
            JobEvent::Submitted(_) => self.jobs_submitted += 1,
            JobEvent::Started { .. } => self.jobs_started += 1,
            JobEvent::Finished(_) => self.jobs_finished += 1,
            JobEvent::Cancelled { .. } => self.jobs_cancelled += 1,
            // Preempt/resume churn is visible through the utilization
            // accumulator; the lifecycle counters track jobs, not spans.
            JobEvent::Preempted { .. } | JobEvent::Resumed { .. } => {}
        }
        self.art.observe(event);
        self.awrt.observe(event);
        self.slowdown.observe(event);
        self.util.observe(event);
        self.makespan.observe(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jobsched_workload::JobId;

    fn outcome(id: u32, submit: Time, start: Time, completion: Time, nodes: u32) -> JobEvent {
        JobEvent::Finished(JobOutcome {
            id: JobId(id),
            submit,
            start,
            completion,
            nodes,
            requested_time: completion - start,
            user: 0,
        })
    }

    #[test]
    fn art_is_mean_response() {
        let mut a = OnlineArt::new();
        a.observe(&outcome(0, 0, 0, 100, 6));
        a.observe(&outcome(1, 0, 100, 150, 6));
        assert_eq!(a.cost(), 125.0);
    }

    #[test]
    fn awrt_weights_by_consumption() {
        let mut a = OnlineAwrt::new();
        a.observe(&outcome(0, 0, 0, 100, 6)); // weight 600, resp 100
        a.observe(&outcome(1, 0, 100, 150, 6)); // weight 300, resp 150
        assert_eq!(a.cost(), (600.0 * 100.0 + 300.0 * 150.0) / 2.0);
    }

    #[test]
    fn empty_accumulators_cost_zero() {
        assert_eq!(OnlineArt::new().cost(), 0.0);
        assert_eq!(OnlineAwrt::new().cost(), 0.0);
        assert_eq!(OnlineMakespan::new().cost(), 0.0);
        assert_eq!(OnlineUtilization::new(10).cost(), 0.0);
        assert_eq!(OnlineBoundedSlowdown::new().cost(), 0.0);
        assert_eq!(OnlineSumWeightedCompletion::new().cost(), 0.0);
        assert!(OnlineUtilization::new(0).cost().is_finite());
    }

    #[test]
    fn accumulation_is_order_independent() {
        // The exactness claim, directly: feeding outcomes in opposite
        // orders yields bit-identical costs.
        let events: Vec<JobEvent> = (0..500)
            .map(|i| {
                outcome(
                    i,
                    i as Time,
                    i as Time * 3,
                    i as Time * 7 + 13,
                    (i % 17) + 1,
                )
            })
            .collect();
        let forward = {
            let mut a = OnlineBoundedSlowdown::new();
            events.iter().for_each(|e| a.observe(e));
            a.cost()
        };
        let backward = {
            let mut a = OnlineBoundedSlowdown::new();
            events.iter().rev().for_each(|e| a.observe(e));
            a.cost()
        };
        assert_eq!(forward.to_bits(), backward.to_bits());
    }

    #[test]
    fn q52_is_lossless_for_terms_above_one() {
        // A single term's Q52 image has exactly the 53 significant bits
        // of its mantissa, so it round-trips bit for bit.
        for x in [1.0f64, 1.5, 2.0, 3.0, 10.0 / 3.0, 1234.56789, 1e9] {
            let back = from_q52(q52(x));
            assert_eq!(back.to_bits(), x.to_bits(), "x={x}");
        }
    }

    #[test]
    fn cancelled_running_jobs_count_their_truncated_execution() {
        let mut a = OnlineArt::new();
        a.observe(&JobEvent::Cancelled {
            id: JobId(0),
            at: 40,
            phase: jobsched_sim::CancelPhase::Running,
            run: Some(JobOutcome {
                id: JobId(0),
                submit: 0,
                start: 0,
                completion: 40,
                nodes: 4,
                requested_time: 100,
                user: 0,
            }),
        });
        // Queued cancellations contribute nothing.
        a.observe(&JobEvent::Cancelled {
            id: JobId(1),
            at: 50,
            phase: jobsched_sim::CancelPhase::Queued,
            run: None,
        });
        assert_eq!(a.cost(), 40.0);
    }

    #[test]
    fn online_metrics_snapshot_tracks_the_lifecycle() {
        let mut m = OnlineMetrics::new(10);
        let empty = m.snapshot();
        assert_eq!(empty.jobs_submitted, 0);
        assert_eq!(empty.art, 0.0);
        m.on_event(&JobEvent::Submitted(jobsched_sim::JobRequest {
            id: JobId(0),
            submit: 0,
            nodes: 5,
            class: jobsched_workload::ClassId(0),
            requested_time: 100,
            user: 0,
        }));
        m.on_event(&JobEvent::Started {
            id: JobId(0),
            at: 0,
            nodes: 5,
        });
        m.on_event(&outcome(0, 0, 0, 100, 5));
        let s = m.snapshot();
        assert_eq!(
            (s.jobs_submitted, s.jobs_started, s.jobs_finished),
            (1, 1, 1)
        );
        assert_eq!(s.art, 100.0);
        assert_eq!(s.awrt, 500.0 * 100.0);
        assert_eq!(s.makespan, 100);
        assert_eq!(s.utilization, 0.5); // 500 busy node-s of 1000 capacity
        assert!(s.bounded_slowdown >= 1.0);
        // Snapshots are copies: taking one does not reset anything.
        assert_eq!(m.snapshot(), s);
    }

    #[test]
    fn online_metrics_counts_cancellations() {
        let mut m = OnlineMetrics::new(10);
        m.on_event(&JobEvent::Cancelled {
            id: JobId(3),
            at: 50,
            phase: jobsched_sim::CancelPhase::Queued,
            run: None,
        });
        let s = m.snapshot();
        assert_eq!(s.jobs_cancelled, 1);
        assert_eq!(s.jobs_finished, 0);
        assert_eq!(s.art, 0.0);
    }

    #[test]
    fn observer_adapter_feeds_the_accumulator() {
        let mut art = OnlineArt::new();
        {
            let mut obs = StreamingObserver(&mut art);
            obs.on_event(&outcome(0, 0, 0, 80, 2));
            obs.on_end(80);
        }
        assert_eq!(art.cost(), 80.0);
    }
}
