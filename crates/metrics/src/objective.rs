//! Schedule-cost (objective) functions.
//!
//! §4 of the paper derives two objectives from Institution B's policy:
//!
//! * **Rule 5** (weekday daytime): *average response time* — "the sum of
//!   the differences between the completion time and submission time for
//!   each job divided by the number of jobs". Job weight is always 1.
//! * **Rule 6** (nights/weekends): after discarding total idle time (frame
//!   based, not online) and makespan (off-line criterion), the *average
//!   weighted response time* "where the weight is identical to the
//!   resource consumption of a job, that is, the product of the execution
//!   time and the number of required nodes". For this objective "the order
//!   of jobs does not matter if no resources are left idle" [16] — which
//!   is why utilization-maximising algorithms shine under it (§7).
//!
//! All objectives are **costs**: smaller is better.
//!
//! Every impl here is a thin wrapper that [`replay`]s the finished
//! schedule through its [`crate::streaming`] accumulator, so the batch
//! and online paths share one arithmetic and agree bit for bit.

use crate::streaming::{
    replay, OnlineArt, OnlineAwrt, OnlineBoundedSlowdown, OnlineIdleTime, OnlineMakespan,
    OnlineSumWeightedCompletion, OnlineUtilization, StreamingObjective,
};
use jobsched_sim::ScheduleRecord;
use jobsched_workload::{Time, Workload};

/// A scalar schedule cost (§2.2). Lower is better.
pub trait Objective {
    /// Name used in reports ("ART", "AWRT", ...).
    fn name(&self) -> &'static str;

    /// Evaluate the cost of a finished schedule.
    ///
    /// Panics if the schedule is incomplete — the paper's final schedule
    /// "is only available after the execution of all jobs".
    fn cost(&self, workload: &Workload, schedule: &ScheduleRecord) -> f64;
}

/// Average response time (Rule 5 objective; weight ≡ 1).
#[derive(Clone, Copy, Debug, Default)]
pub struct AvgResponseTime;

impl Objective for AvgResponseTime {
    fn name(&self) -> &'static str {
        "ART"
    }

    fn cost(&self, workload: &Workload, schedule: &ScheduleRecord) -> f64 {
        let mut acc = OnlineArt::new();
        replay(workload, schedule, &mut acc);
        acc.cost()
    }
}

/// Average weighted response time (Rule 6 objective; weight = actual
/// resource consumption `effective_runtime × nodes`).
#[derive(Clone, Copy, Debug, Default)]
pub struct AvgWeightedResponseTime;

impl Objective for AvgWeightedResponseTime {
    fn name(&self) -> &'static str {
        "AWRT"
    }

    fn cost(&self, workload: &Workload, schedule: &ScheduleRecord) -> f64 {
        let mut acc = OnlineAwrt::new();
        replay(workload, schedule, &mut acc);
        acc.cost()
    }
}

/// Makespan: completion time of the last job. §4 notes it "is mainly an
/// off-line criterion" — kept for lower-bound comparisons and Fig. 2.
#[derive(Clone, Copy, Debug, Default)]
pub struct Makespan;

impl Objective for Makespan {
    fn name(&self) -> &'static str {
        "makespan"
    }

    fn cost(&self, workload: &Workload, schedule: &ScheduleRecord) -> f64 {
        let mut acc = OnlineMakespan::new();
        replay(workload, schedule, &mut acc);
        acc.cost()
    }
}

/// Sum of idle node-seconds within a fixed time frame — the literal Rule 6
/// criterion §4 starts from ("the sum of the idle times for all resources
/// in a given time frame") before rejecting it as not online-capable.
#[derive(Clone, Copy, Debug)]
pub struct TotalIdleTime {
    /// Frame start.
    pub from: Time,
    /// Frame end (exclusive).
    pub to: Time,
}

impl Objective for TotalIdleTime {
    fn name(&self) -> &'static str {
        "idle-time"
    }

    fn cost(&self, workload: &Workload, schedule: &ScheduleRecord) -> f64 {
        let mut acc = OnlineIdleTime::new(self.from, self.to, schedule.machine_nodes());
        replay(workload, schedule, &mut acc);
        acc.cost()
    }
}

/// Negated utilization over `[0, makespan]`, as a cost (lower = busier).
#[derive(Clone, Copy, Debug, Default)]
pub struct Utilization;

impl Objective for Utilization {
    fn name(&self) -> &'static str {
        "neg-utilization"
    }

    fn cost(&self, workload: &Workload, schedule: &ScheduleRecord) -> f64 {
        let mut acc = OnlineUtilization::new(schedule.machine_nodes());
        replay(workload, schedule, &mut acc);
        acc.cost()
    }
}

/// Σ wⱼ·Cⱼ — the classical weighted completion time (Smith's criterion
/// [19]), the off-line objective SMART and PSRS were designed for.
#[derive(Clone, Copy, Debug, Default)]
pub struct SumWeightedCompletion;

impl Objective for SumWeightedCompletion {
    fn name(&self) -> &'static str {
        "sum-wC"
    }

    fn cost(&self, workload: &Workload, schedule: &ScheduleRecord) -> f64 {
        let mut acc = OnlineSumWeightedCompletion::new();
        replay(workload, schedule, &mut acc);
        acc.cost()
    }
}

/// Average bounded slowdown with the conventional 10-second threshold —
/// a widely used auxiliary metric (Feitelson & Rudolph [3]); provided for
/// the extension benches.
#[derive(Clone, Copy, Debug, Default)]
pub struct AvgBoundedSlowdown;

impl Objective for AvgBoundedSlowdown {
    fn name(&self) -> &'static str {
        "bounded-slowdown"
    }

    fn cost(&self, workload: &Workload, schedule: &ScheduleRecord) -> f64 {
        let mut acc = OnlineBoundedSlowdown::new();
        replay(workload, schedule, &mut acc);
        acc.cost()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jobsched_workload::{JobBuilder, JobId};

    /// Two jobs on 10 nodes: J0 (6 nodes, 100 s) at t=0, J1 (6 nodes,
    /// 50 s actual / 100 s requested) waits until 100.
    fn fixture() -> (Workload, ScheduleRecord) {
        let w = Workload::new(
            "t",
            10,
            vec![
                JobBuilder::new(JobId(0))
                    .submit(0)
                    .nodes(6)
                    .requested(100)
                    .runtime(100)
                    .build(),
                JobBuilder::new(JobId(0))
                    .submit(0)
                    .nodes(6)
                    .requested(100)
                    .runtime(50)
                    .build(),
            ],
        );
        let mut s = ScheduleRecord::new(10, 2);
        s.place(JobId(0), 0, 100);
        s.place(JobId(1), 100, 150);
        (w, s)
    }

    #[test]
    fn art_averages_response_times() {
        let (w, s) = fixture();
        // responses: 100 and 150.
        assert_eq!(AvgResponseTime.cost(&w, &s), 125.0);
    }

    #[test]
    fn awrt_weights_by_area() {
        let (w, s) = fixture();
        // areas: 600 and 300; weighted responses 600×100 + 300×150.
        let expected = (600.0 * 100.0 + 300.0 * 150.0) / 2.0;
        assert_eq!(AvgWeightedResponseTime.cost(&w, &s), expected);
    }

    #[test]
    fn makespan_is_last_completion() {
        let (w, s) = fixture();
        assert_eq!(Makespan.cost(&w, &s), 150.0);
    }

    #[test]
    fn idle_time_within_frame() {
        let (w, s) = fixture();
        // Frame [0, 150): capacity 1500 node-s, busy 600 + 300 = 900.
        let idle = TotalIdleTime { from: 0, to: 150 }.cost(&w, &s);
        assert_eq!(idle, 600.0);
    }

    #[test]
    fn idle_time_partial_overlap() {
        let (w, s) = fixture();
        // Frame [50, 100): only J0 busy → 6×50 busy of 500.
        let idle = TotalIdleTime { from: 50, to: 100 }.cost(&w, &s);
        assert_eq!(idle, 500.0 - 300.0);
    }

    #[test]
    fn utilization_cost_is_negative() {
        let (w, s) = fixture();
        let u = Utilization.cost(&w, &s);
        assert!((u + 900.0 / 1500.0).abs() < 1e-12);
    }

    #[test]
    fn sum_weighted_completion() {
        let (w, s) = fixture();
        assert_eq!(
            SumWeightedCompletion.cost(&w, &s),
            600.0 * 100.0 + 300.0 * 150.0
        );
    }

    #[test]
    fn bounded_slowdown_floors_at_one() {
        let (w, s) = fixture();
        // J0: 100/100 = 1; J1: 150/50 = 3.
        assert_eq!(AvgBoundedSlowdown.cost(&w, &s), 2.0);
    }

    #[test]
    fn empty_workload_costs_zero() {
        let w = Workload::new("e", 10, vec![]);
        let s = ScheduleRecord::new(10, 0);
        assert_eq!(AvgResponseTime.cost(&w, &s), 0.0);
        assert_eq!(AvgWeightedResponseTime.cost(&w, &s), 0.0);
    }

    #[test]
    #[should_panic(expected = "no placement")]
    fn incomplete_schedule_panics() {
        let (w, _) = fixture();
        let s = ScheduleRecord::new(10, 2);
        let _ = AvgResponseTime.cost(&w, &s);
    }

    #[test]
    fn objectives_are_dyn_compatible() {
        let objs: Vec<Box<dyn Objective>> = vec![
            Box::new(AvgResponseTime),
            Box::new(AvgWeightedResponseTime),
            Box::new(Makespan),
        ];
        let (w, s) = fixture();
        let names: Vec<_> = objs.iter().map(|o| o.name()).collect();
        assert_eq!(names, vec!["ART", "AWRT", "makespan"]);
        assert!(objs.iter().all(|o| o.cost(&w, &s) > 0.0));
    }
}
