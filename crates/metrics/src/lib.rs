//! Objective functions and multi-criteria schedule evaluation.
//!
//! §2.2 of the paper: "an objective function must be defined that assigns a
//! scalar value, the so called *schedule cost*, to each schedule. Note that
//! this property is essential for the mechanical evaluation and ranking of
//! a schedule." This crate supplies:
//!
//! * [`objective`] — the schedule-cost functions of §4 (average response
//!   time for Rule 5, average weighted response time with weight =
//!   resource consumption for Rule 6) plus the alternatives §4 discusses
//!   and rejects for online use (total idle time in a frame, makespan) and
//!   common auxiliaries (utilization, bounded slowdown, Σ weighted
//!   completion time);
//! * [`pareto`] — the Pareto-front / partial-order machinery behind
//!   Figure 1's derivation of an objective function from conflicting
//!   policy criteria.

//! * [`streaming`] — online one-pass accumulators ([`OnlineArt`],
//!   [`OnlineAwrt`], …) implementing [`StreamingObjective`] over the
//!   simulation pipeline's event stream; the batch [`Objective`] impls
//!   are thin wrappers over these, so both paths agree bit for bit.

pub mod fairness;
pub mod objective;
pub mod pareto;
pub mod streaming;
pub mod timeseries;

pub use fairness::{
    MaxUserSlowdown, OnlineMaxUserSlowdown, OnlineP95WidthSlowdown, OnlineSlowdownVariance,
    P95WidthSlowdown, SlowdownVariance,
};
pub use objective::{
    AvgBoundedSlowdown, AvgResponseTime, AvgWeightedResponseTime, Makespan, Objective,
    SumWeightedCompletion, TotalIdleTime, Utilization,
};
pub use pareto::{pareto_front, pareto_ranks, rank_violations, Point};
pub use streaming::{
    replay, MetricsSnapshot, OnlineArt, OnlineAwrt, OnlineBoundedSlowdown, OnlineIdleTime,
    OnlineMakespan, OnlineMetrics, OnlineSumWeightedCompletion, OnlineUtilization,
    StreamingObjective, StreamingObserver,
};
