//! Deterministic replay of the committed counterexample corpus.
//!
//! Every `.scn` file under `tests/corpus/` is parsed and re-checked on
//! each `cargo test` run (the fast PR-time half of the oracle CI story;
//! the budgeted fuzz sweep is the nightly half):
//!
//! * scenarios **without** a `mutate` directive are regression cases —
//!   once-shrunk reproducers of fixed bugs, or curated fault-heavy cases
//!   — and must replay clean;
//! * scenarios **with** a `mutate` directive are known-bad schedulers and
//!   must keep tripping the oracle — if one stops failing, the invariant
//!   checks have lost their teeth.

use jobsched_oracle::{check_scenario, Scenario};
use std::path::PathBuf;

fn corpus_files() -> Vec<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("corpus dir {}: {e}", dir.display()))
        .map(|entry| entry.expect("corpus dir entry").path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "scn"))
        .collect();
    files.sort();
    files
}

#[test]
fn committed_corpus_replays_with_expected_verdicts() {
    let files = corpus_files();
    assert!(!files.is_empty(), "corpus must not be empty");
    for path in files {
        let text = std::fs::read_to_string(&path).expect("read corpus file");
        let scenario = Scenario::from_text(&text)
            .unwrap_or_else(|e| panic!("{}: unparsable corpus entry: {e}", path.display()));
        let violations = check_scenario(&scenario);
        if scenario.mutation.is_some() {
            assert!(
                !violations.is_empty(),
                "{}: known-bad scenario now replays clean — the oracle lost its teeth",
                path.display()
            );
        } else {
            assert!(
                violations.is_empty(),
                "{}: regression — committed reproducer violates again:\n  {}",
                path.display(),
                violations.join("\n  ")
            );
        }
    }
}
