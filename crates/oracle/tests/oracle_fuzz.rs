//! The fuzz harness: replay a budget of randomized fault-injected
//! scenarios through the real engine and fail loudly — with a shrunk,
//! replayable counterexample — on any invariant violation.
//!
//! Knobs (environment variables, all optional):
//!
//! * `ORACLE_FUZZ_COUNT` — scenarios to run (default 500; the nightly CI
//!   job raises this);
//! * `ORACLE_FUZZ_SEED` — base seed (default 0x0DD5EED; logged so a
//!   nightly failure is regenerable);
//! * `ORACLE_REPRO_DIR` — where to write `.scn` counterexamples
//!   (default: the target tmpdir; CI points this at an artifact dir).

use jobsched_oracle::{
    broken_priority_scenario, broken_scenario, check_scenario, random_scenario, shrink,
};
use jobsched_sweep::pool::run_indexed;

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn repro_dir() -> std::path::PathBuf {
    match std::env::var_os("ORACLE_REPRO_DIR") {
        Some(dir) => std::path::PathBuf::from(dir),
        None => std::env::temp_dir().join("jobsched-oracle-repro"),
    }
}

/// Write the shrunk counterexample and its provenance, returning the
/// path (best effort: the panic message carries the scenario regardless).
fn write_repro(name: &str, seed: u64, index: u64, scenario: &jobsched_oracle::Scenario) -> String {
    let dir = repro_dir();
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(format!("{name}-seed{seed:#x}-{index}.scn"));
    let body = format!(
        "# shrunk counterexample: {name}, base seed {seed:#x}, index {index}\n\
         # regenerate: ORACLE_FUZZ_SEED={seed} cargo test -p jobsched-oracle --test oracle_fuzz\n\
         {}",
        scenario.to_text()
    );
    let _ = std::fs::write(&path, body);
    path.display().to_string()
}

#[test]
fn randomized_fault_injected_scenarios_hold_all_invariants() {
    let count = env_u64("ORACLE_FUZZ_COUNT", 500);
    let seed = env_u64("ORACLE_FUZZ_SEED", 0x0DD5EED);
    let jobs = std::thread::available_parallelism().map_or(4, |n| n.get());
    eprintln!("oracle_fuzz: {count} scenarios, base seed {seed:#x}, {jobs} workers");

    let failures: Vec<(u64, Vec<String>)> =
        run_indexed(jobs, (0..count).collect::<Vec<u64>>(), |_task, index| {
            let scenario = random_scenario(seed, index);
            let violations = check_scenario(&scenario);
            (index, violations)
        })
        .into_iter()
        .filter(|(_, v)| !v.is_empty())
        .collect();

    if let Some((index, violations)) = failures.first() {
        let scenario = random_scenario(seed, *index);
        let small = shrink(&scenario);
        let remaining = check_scenario(&small);
        let path = write_repro("fuzz", seed, *index, &small);
        panic!(
            "{} of {count} scenarios violated invariants; first: index {index}\n\
             original violations:\n  {}\n\
             shrunk reproducer ({} jobs, {} cancels, {} drains) written to {path}\n\
             shrunk violations:\n  {}\n\
             scenario:\n{}",
            failures.len(),
            violations.join("\n  "),
            small.jobs.len(),
            small.cancels.len(),
            small.drains.len(),
            remaining.join("\n  "),
            small.to_text()
        );
    }
}

#[test]
fn broken_priority_scheduler_is_caught_and_shrunk() {
    // Same teeth-check for the priority family: an inverted-order WFP
    // impostor must trip the priority pick-equality differential.
    let seed = env_u64("ORACLE_FUZZ_SEED", 0x0DD5EED);
    let caught: Vec<u64> = (0..25)
        .filter(|&i| !check_scenario(&broken_priority_scenario(seed, i)).is_empty())
        .collect();
    assert!(
        caught.len() >= 20,
        "inverted-WFP impostor evaded the oracle in most runs (caught {}/25)",
        caught.len()
    );
    let small = shrink(&broken_priority_scenario(seed, caught[0]));
    assert!(
        !check_scenario(&small).is_empty(),
        "shrinking lost the violation"
    );
    assert!(
        small.jobs.len() <= 6,
        "reproducer still has {} jobs:\n{}",
        small.jobs.len(),
        small.to_text()
    );
}

#[test]
fn broken_scheduler_is_caught_and_shrunk() {
    // The self-test that proves the harness has teeth: a deliberately
    // broken scheduler (LIFO claiming to be FCFS) must be caught by the
    // differential checks and shrink to a ≤ 5-job reproducer.
    let seed = env_u64("ORACLE_FUZZ_SEED", 0x0DD5EED);
    let caught: Vec<u64> = (0..25)
        .filter(|&i| !check_scenario(&broken_scenario(seed, i)).is_empty())
        .collect();
    assert!(
        caught.len() >= 20,
        "LIFO impostor evaded the oracle in most runs (caught {}/25)",
        caught.len()
    );
    let small = shrink(&broken_scenario(seed, caught[0]));
    assert!(
        !check_scenario(&small).is_empty(),
        "shrinking lost the violation"
    );
    assert!(
        small.jobs.len() <= 5,
        "reproducer still has {} jobs:\n{}",
        small.jobs.len(),
        small.to_text()
    );
}
