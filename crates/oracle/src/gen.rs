//! Randomized scenario generation for the fuzz harness.
//!
//! Scenarios are drawn from the hand-rolled xoshiro generator so that a
//! `(base seed, index)` pair pins a scenario bit-for-bit: the nightly
//! fuzz job logs its seed and any counterexample can be regenerated. The
//! shapes are chosen adversarially for schedulers rather than
//! realistically for users — convoys of full-width jobs, same-instant
//! submission bursts, estimates that are wildly wrong in both directions,
//! cancellations aimed at every lifecycle phase, and drains that shrink
//! the machine under a planned backlog.

use crate::scenario::{CancelSpec, DrainSpec, PreemptSpec, Scenario, ScenarioJob};
use jobsched_algos::scheduler::ProfileMode;
use jobsched_algos::spec::{AlgorithmSpec, PolicyKind};
use jobsched_workload::rng::{derive_seed, Rng, SmallRng};
use jobsched_workload::{ClassId, MachineLayout, NodeClassSpec, NodeType, Time};

/// Seed-stream tag for scenario generation (arbitrary constant, fixed
/// forever so corpus regeneration stays possible).
const STREAM_SCENARIO: u64 = 0x0AC1_E5EE;

/// Generate the `index`-th scenario of the stream rooted at `base_seed`.
pub fn random_scenario(base_seed: u64, index: u64) -> Scenario {
    let mut rng = SmallRng::seed_from_u64(derive_seed(base_seed ^ STREAM_SCENARIO, index));

    let machine_nodes = *pick(&mut rng, &[32u32, 64, 256]);
    let spec = {
        // The full atlas: the 13 paper combos plus the priority family
        // (every scoring rule × every backfill mode), so fuzzing sweeps
        // the priority differentials as densely as the paper rows.
        let matrix = AlgorithmSpec::atlas_matrix();
        *pick(&mut rng, &matrix)
    };
    let profile_mode = *pick(&mut rng, &[ProfileMode::Rebuild, ProfileMode::Incremental]);
    let caching = rng.random_range(0u32..2) == 0;

    let n = rng.random_range(20usize..=80);
    let mut jobs = job_stream(&mut rng, n, machine_nodes);
    // Occasionally make every estimate exact: the projected calendar is
    // then the real one and the conservative first-sight reservations
    // become binding promises the oracle enforces.
    if rng.random_range(0u32..6) == 0 {
        for j in &mut jobs {
            j.runtime = j.requested;
        }
    }
    let horizon = jobs.last().map(|j| j.submit).unwrap_or(0) + 10_000;

    // Cancellations: up to 15% of jobs, injected anywhere from before the
    // submission (the PreSubmit suppression phase) to long after the job
    // is gone (the AlreadyFinished no-op phase).
    let mut cancels = Vec::new();
    let cancel_count = rng.random_range(0usize..=n * 15 / 100);
    for _ in 0..cancel_count {
        let job = rng.random_range(0usize..jobs.len());
        let at = (jobs[job].submit + rng.random_range(0u64..20_000))
            .saturating_sub(rng.random_range(0u64..1_000));
        cancels.push(CancelSpec { at, job });
    }

    // Drains: a few maintenance windows, sometimes overlapping.
    let mut drains = Vec::new();
    for _ in 0..rng.random_range(0usize..=3) {
        let at = rng.random_range(0u64..horizon);
        let nodes = rng.random_range(1u32..=machine_nodes.div_ceil(2));
        let until = at + rng.random_range(1u64..15_000);
        drains.push(DrainSpec {
            at,
            nodes,
            until,
            class: 0,
        });
    }

    // Heterogeneous variant (1 in 4): partition the machine into a thin
    // majority and a scarce wide pool, retype the jobs, and aim faults at
    // the scarce class — the adversarial shapes §6.1 heterogeneity adds
    // (draining the whole wide pool under backlog, cancelling the job a
    // scarce pool was reserved for). Drawn after every homogeneous field
    // so the legacy part of the stream stays bit-identical per seed.
    let mut classes = Vec::new();
    if rng.random_range(0u32..4) == 0 {
        let wide = (machine_nodes / 8).max(1);
        let thin = machine_nodes - wide;
        classes = vec![
            NodeClassSpec {
                node_type: NodeType::Thin,
                memory_mb: 512,
                count: thin,
            },
            NodeClassSpec {
                node_type: NodeType::Wide,
                memory_mb: 2048,
                count: wide,
            },
        ];
        let layout = MachineLayout::new(classes.clone());
        for j in &mut jobs {
            match rng.random_range(0u32..8) {
                0 => {
                    j.node_type = NodeType::Wide;
                    j.memory_mb = 2048;
                }
                1 => j.memory_mb = 2048, // thin job escalating into the wide pool
                _ => j.memory_mb = 256,
            }
            let cap = layout
                .max_width_for(j.node_type, j.memory_mb)
                .expect("both pools host generated types");
            j.nodes = j.nodes.min(cap).max(1);
        }
        for d in &mut drains {
            if rng.random_range(0u32..2) == 0 {
                // Drain the scarce pool — often all of it.
                d.class = 1;
                d.nodes = d.nodes.min(wide);
            } else {
                d.nodes = d.nodes.min(thin);
            }
        }
        let scarce: Vec<usize> = jobs
            .iter()
            .enumerate()
            .filter(|(_, j)| layout.resolve(j.node_type, j.memory_mb, j.nodes) == Some(ClassId(1)))
            .map(|(i, _)| i)
            .collect();
        if !scarce.is_empty() {
            for c in &mut cancels {
                if rng.random_range(0u32..2) == 0 {
                    c.job = scarce[rng.random_range(0usize..scarce.len())];
                }
            }
        }
    }

    // Forced preemptions: up to ~20% of jobs, aimed at their likely
    // execution window, with resume delays spanning near-immediate
    // requeue to long suspensions. Some preemptions inevitably land on
    // queued or finished jobs — those exercise the recorded-no-op path.
    // Drawn after every legacy field so the pre-preemption half of the
    // stream stays bit-identical per seed.
    let mut preempts = Vec::new();
    for _ in 0..rng.random_range(0usize..=n / 5) {
        let job = rng.random_range(0usize..jobs.len());
        let at = jobs[job].submit + rng.random_range(0u64..25_000);
        let resume_at = at + rng.random_range(1u64..10_000);
        preempts.push(PreemptSpec { at, job, resume_at });
    }

    Scenario {
        machine_nodes,
        policy: spec.kind,
        backfill: spec.backfill,
        profile_mode,
        caching,
        mutation: None,
        classes,
        jobs,
        cancels,
        drains,
        preempts,
    }
}

/// A scenario whose scheduler is the deliberately broken LIFO impostor
/// claiming to be plain FCFS — the self-test that proves the oracle can
/// catch a lying scheduler.
pub fn broken_scenario(base_seed: u64, index: u64) -> Scenario {
    let mut s = random_scenario(base_seed, index);
    s.policy = PolicyKind::Fcfs;
    s.backfill = jobsched_algos::BackfillMode::None;
    s.mutation = Some(crate::scenario::Mutation::Lifo);
    s
}

/// A scenario whose scheduler is a WFP priority scheduler ranking in
/// *inverted* score order while claiming to run real WFP — the
/// self-test for the priority pick-equality differential. Homogeneous
/// (typed scenarios stand the differential down) and head-blocking, so
/// any ordering divergence surfaces as a pick mismatch.
pub fn broken_priority_scenario(base_seed: u64, index: u64) -> Scenario {
    use jobsched_algos::ScoreFn;
    let mut s = random_scenario(base_seed, index);
    s.policy = PolicyKind::Priority(ScoreFn::Wfp);
    s.backfill = jobsched_algos::BackfillMode::None;
    s.mutation = Some(crate::scenario::Mutation::InvertedPriority);
    s.classes.clear();
    for j in &mut s.jobs {
        j.node_type = NodeType::Thin;
        j.memory_mb = 0;
    }
    for d in &mut s.drains {
        d.class = 0;
    }
    s
}

fn job_stream(rng: &mut SmallRng, n: usize, machine_nodes: u32) -> Vec<ScenarioJob> {
    let shape = rng.random_range(0u32..4);
    let mut jobs = Vec::with_capacity(n);
    let mut t: Time = 0;
    for i in 0..n {
        // Submission process by shape: steady trickle, bursty batches
        // (many same-instant submissions), a convoy front-loaded at 0, or
        // fully random.
        match shape {
            0 => t += rng.random_range(1u64..600),
            1 => {
                if rng.random_range(0u32..4) == 0 {
                    t += rng.random_range(1u64..2_000);
                }
            }
            2 => {
                if i >= n / 3 {
                    t += rng.random_range(1u64..400);
                }
            }
            _ => t += rng.random_range(0u64..1_200),
        }

        // Widths skew narrow but include full-machine convoy members.
        let nodes = match rng.random_range(0u32..10) {
            0 => machine_nodes,
            1..=3 => rng.random_range(machine_nodes / 2..=machine_nodes).max(1),
            _ => rng.random_range(1u32..=(machine_nodes / 4).max(1)),
        };

        // Estimates vs reality: exact, early finisher, or overrun (the
        // engine truncates at the estimate — Rule 2).
        let requested = rng.random_range(1u64..30_000);
        let runtime = match rng.random_range(0u32..3) {
            0 => requested,
            1 => rng.random_range(1u64..=requested),
            _ => requested + rng.random_range(1u64..10_000),
        };

        jobs.push(ScenarioJob {
            submit: t,
            nodes,
            requested,
            runtime,
            node_type: NodeType::Thin,
            memory_mb: 0,
        });
    }
    jobs.sort_by_key(|j| j.submit);
    jobs
}

fn pick<'a, T>(rng: &mut SmallRng, items: &'a [T]) -> &'a T {
    &items[rng.random_range(0usize..items.len())]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_scenarios_are_valid_and_deterministic() {
        for i in 0..200 {
            let s = random_scenario(42, i);
            s.validate().unwrap_or_else(|e| panic!("scenario {i}: {e}"));
            assert_eq!(s, random_scenario(42, i), "index {i} not deterministic");
        }
    }

    #[test]
    fn stream_covers_the_configuration_space() {
        let scenarios: Vec<Scenario> = (0..300).map(|i| random_scenario(7, i)).collect();
        let policies: std::collections::BTreeSet<&str> =
            scenarios.iter().map(|s| s.policy.label()).collect();
        assert_eq!(
            policies.len(),
            15,
            "all five paper policies plus the ten priority rules drawn: {policies:?}"
        );
        let priority_backfills: std::collections::BTreeSet<_> = scenarios
            .iter()
            .filter(|s| matches!(s.policy, PolicyKind::Priority(_)))
            .map(|s| s.backfill.label())
            .collect();
        assert_eq!(
            priority_backfills.len(),
            3,
            "priority rows drawn under every backfill mode"
        );
        assert!(scenarios.iter().any(|s| !s.cancels.is_empty()));
        assert!(scenarios.iter().any(|s| !s.drains.is_empty()));
        assert!(scenarios.iter().any(|s| s.cancels.is_empty()));
        assert!(
            scenarios.iter().any(|s| !s.preempts.is_empty()),
            "preemption faults drawn"
        );
        assert!(
            scenarios.iter().any(|s| s.preempts.is_empty()),
            "preemption-free scenarios drawn"
        );
        assert!(scenarios
            .iter()
            .any(|s| s.profile_mode == ProfileMode::Rebuild));
        assert!(scenarios
            .iter()
            .any(|s| s.profile_mode == ProfileMode::Incremental));
        assert!(scenarios.iter().any(|s| s.caching));
        assert!(scenarios.iter().any(|s| !s.caching));
        assert!(
            scenarios.iter().any(|s| !s.classes.is_empty()),
            "heterogeneous scenarios drawn"
        );
        assert!(
            scenarios.iter().any(|s| s.classes.is_empty()),
            "homogeneous scenarios drawn"
        );
        assert!(
            scenarios
                .iter()
                .any(|s| s.drains.iter().any(|d| d.class != 0)),
            "some drain targets the scarce pool"
        );
    }

    #[test]
    fn scenario_text_round_trips_through_the_generator() {
        for i in 0..50 {
            let s = random_scenario(99, i);
            assert_eq!(Scenario::from_text(&s.to_text()).unwrap(), s);
        }
    }
}
