//! Schedule invariants, checked independently of the scheduler's own
//! bookkeeping.
//!
//! The oracle wraps the scheduler under test in [`OracleScheduler`],
//! which mirrors the queue from the raw engine callbacks (submission,
//! cancellation, start) and audits every decision round:
//!
//! * **Generic invariants** (all policies): picks are waiting, never
//!   cancelled, never duplicated, never before submission, and
//!   sequentially feasible against the machine's free nodes.
//! * **Exact differentials** (deterministic policies): the picks must
//!   equal — element for element, in order — an independent naive
//!   re-implementation of the published algorithm working from the
//!   machine ground truth: head-blocking FCFS, Garey & Graham any-fit,
//!   EASY's shadow/extra rule, conservative FIFO booking, and — for the
//!   whole priority family — an independent re-statement of each scoring
//!   formula re-ranking the queue before the same naive head / EASY /
//!   conservative selection.
//! * **The conservative no-delay guarantee** (§5.2): "will not increase
//!   the projected completion time of a job submitted before the job
//!   used for backfilling". In the FIFO re-booking realisation this is
//!   carried by the differential itself — the naive calendar books every
//!   job *before* seeing later-queued ones, so pick equality proves no
//!   later job displaced an earlier booking. The stronger reading —
//!   "first-sight reservations are upper bounds on actual starts" — is
//!   *not* an invariant under inexact estimates: an early finish lets an
//!   earlier-queued job backfill-start ahead of its reservation, its new
//!   projection cascades other earlier-queued reservations, and a later
//!   job's booking can legitimately move past its original promise. With
//!   exact estimates the projected calendar is the real one, nothing is
//!   ever re-booked differently, and the promise does bind — so that is
//!   exactly when the oracle enforces it.
//!
//! After the run, [`check_outcome`] audits the finished schedule from
//! first principles: a capacity sweep over placements *and* drain grants,
//! start-after-submit, Rule 2 truncation against the fault log's
//! cancellation phases, FCFS start monotonicity, and an independent
//! recomputation of ART/AWRT against `jobsched-metrics`.

use crate::scenario::Scenario;
use jobsched_algos::spec::PolicyKind;
use jobsched_algos::{BackfillMode, ScoreFn};
use jobsched_metrics::{AvgResponseTime, AvgWeightedResponseTime, Objective};
use jobsched_sim::{
    simulate_batch_with_faults, simulate_with_faults, CancelPhase, FaultOutcome, JobRequest,
    Machine, Profile, Scheduler, SimOutcome,
};
use jobsched_workload::{ClassId, JobId, MachineLayout, Time, Workload};

/// Which exact pick-equality differential applies to a configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ExactCheck {
    /// Dynamic policies (SMART, PSRS): generic invariants only.
    None,
    /// FCFS, plain list: head-blocking prefix of the FIFO queue.
    FcfsHead,
    /// Garey & Graham: any-fit over the FIFO queue.
    GareyAny,
    /// FCFS + EASY: shadow-time/extra-node backfill rule.
    FcfsEasy,
    /// FCFS + conservative: FIFO reservation booking.
    FcfsConservative,
    /// Priority family (any backfill): re-rank the queue by an
    /// independent re-statement of the scoring formula, then run the
    /// same naive head / EASY / conservative selection over the ranked
    /// order instead of the FIFO queue.
    Priority(ScoreFn),
}

impl ExactCheck {
    fn for_config(policy: PolicyKind, backfill: BackfillMode) -> ExactCheck {
        match (policy, backfill) {
            (PolicyKind::Fcfs, BackfillMode::None) => ExactCheck::FcfsHead,
            (PolicyKind::Fcfs, BackfillMode::Easy) => ExactCheck::FcfsEasy,
            (PolicyKind::Fcfs, BackfillMode::Conservative) => ExactCheck::FcfsConservative,
            (PolicyKind::GareyGraham, _) => ExactCheck::GareyAny,
            (PolicyKind::Priority(score), _) => ExactCheck::Priority(score),
            _ => ExactCheck::None,
        }
    }
}

/// Independent re-statement of the priority scoring formulas
/// (`crates/algos/src/priority.rs` module docs; smaller = earlier). The
/// floating-point expression order deliberately mirrors the normative
/// spec so that equal inputs produce bit-equal scores — the differential
/// compares *orders*, which must therefore agree exactly.
fn naive_score(score: ScoreFn, wait: u64, estimate: u64, width: u32) -> f64 {
    let wait = wait as f64;
    let est = estimate.max(1) as f64;
    let width = width as f64;
    match score {
        ScoreFn::Fcfs => -wait,
        ScoreFn::Sjf => est,
        ScoreFn::Ljf => -est,
        ScoreFn::SmallestFirst => width,
        ScoreFn::LargestFirst => -width,
        ScoreFn::Wfp => -(wait / est) * width,
        ScoreFn::Wfp3 => {
            let r = wait / est;
            -(r * r * r) * width
        }
        ScoreFn::Unicef => -wait / ((width + 1.0).log2() * est),
        ScoreFn::F1 => est.log10() * width - 870.0 * (wait + 1.0).log10(),
        ScoreFn::F2 => est.sqrt() * width - 25_600.0 * (wait + 1.0).log10(),
    }
}

/// The auditing wrapper around the scheduler under test.
struct OracleScheduler<'a> {
    inner: Box<dyn Scheduler>,
    scenario: &'a Scenario,
    /// Typed scenarios carry their layout for per-class accounting.
    layout: Option<MachineLayout>,
    exact: ExactCheck,
    /// Whether first-sight conservative reservations are binding: exact
    /// estimates throughout and a fault-free plan.
    promises_bind: bool,
    /// Queue mirrored from raw engine callbacks, kept in ascending id
    /// order. For first-time submissions that is arrival order (ids
    /// ascend with submit time); a preempted job's remainder re-enters at
    /// its *original* position — the id-keyed wait queues serve FCFS by
    /// first arrival, so a resumed remainder outranks jobs that arrived
    /// after it.
    waiting: Vec<usize>,
    /// The request the scheduler currently sees per job: `(submit,
    /// requested, nodes)`. Initially the scenario job; a forced
    /// preemption requeues the remainder as a fresh request (submit =
    /// resume instant, requested = what's left), and every differential
    /// must score that remainder, not the original.
    view: Vec<(Time, Time, u32)>,
    started: Vec<Option<Time>>,
    cancelled: Vec<bool>,
    /// Conservative no-delay promises, booked at first sight of a job.
    /// Only binding when every projection is exact (see module docs), so
    /// only populated then.
    guarantees: Vec<Option<Time>>,
    violations: Vec<String>,
}

impl<'a> OracleScheduler<'a> {
    fn new(scenario: &'a Scenario) -> Self {
        let n = scenario.jobs.len();
        OracleScheduler {
            inner: scenario.scheduler(),
            scenario,
            layout: scenario.layout(),
            // The naive re-implementations reason over the whole machine;
            // a typed scenario partitions it, so those differentials do
            // not apply — the generic and per-class invariants still do.
            exact: if scenario.classes.is_empty() {
                ExactCheck::for_config(scenario.policy, scenario.backfill)
            } else {
                ExactCheck::None
            },
            promises_bind: scenario.cancels.is_empty()
                && scenario.drains.is_empty()
                && scenario.preempts.is_empty()
                && scenario.jobs.iter().all(|j| j.runtime >= j.requested),
            waiting: Vec::new(),
            view: scenario
                .jobs
                .iter()
                .map(|j| (j.submit, j.requested, j.nodes))
                .collect(),
            started: vec![None; n],
            cancelled: vec![false; n],
            guarantees: vec![None; n],
            violations: Vec::new(),
        }
    }

    fn job(&self, i: usize) -> (u32, Time) {
        let (_, requested, nodes) = self.view[i];
        (nodes, requested.max(1))
    }

    /// The queue re-ranked by `(naive score at now, job index)`
    /// ascending — the priority family's normative order, restated
    /// independently of `jobsched_algos::priority::rank`.
    fn ranked_waiting(&self, score: ScoreFn, now: Time) -> Vec<usize> {
        let mut keyed: Vec<(f64, usize)> = self
            .waiting
            .iter()
            .map(|&i| {
                let (submit, requested, nodes) = self.view[i];
                let wait = now.saturating_sub(submit);
                (naive_score(score, wait, requested, nodes), i)
            })
            .collect();
        keyed.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        keyed.into_iter().map(|(_, i)| i).collect()
    }

    /// Head-blocking selection: greedy prefix of `order` until a job
    /// does not fit.
    fn naive_head(&self, order: &[usize], machine: &Machine) -> Vec<usize> {
        let mut free = machine.free_nodes();
        let mut picks = Vec::new();
        for &i in order {
            let (nodes, _) = self.job(i);
            if nodes <= free {
                free -= nodes;
                picks.push(i);
            } else {
                break;
            }
        }
        picks
    }

    /// Independent re-implementation of the published selection rules
    /// over the mirrored queue (FIFO or priority-ranked) and the machine
    /// ground truth.
    fn expected_picks(&self, now: Time, machine: &Machine) -> Option<Vec<usize>> {
        match self.exact {
            ExactCheck::None => None,
            ExactCheck::FcfsHead => Some(self.naive_head(&self.waiting, machine)),
            ExactCheck::GareyAny => {
                let mut free = machine.free_nodes();
                let mut picks = Vec::new();
                for &i in &self.waiting {
                    let (nodes, _) = self.job(i);
                    if nodes <= free {
                        free -= nodes;
                        picks.push(i);
                    }
                }
                Some(picks)
            }
            ExactCheck::FcfsEasy => Some(self.naive_easy(now, machine, &self.waiting)),
            ExactCheck::FcfsConservative => {
                // The real scheduler truncates its calendar on pathological
                // queue depths; the naive booking below is the exact
                // (untruncated) algorithm, so stand down beyond the limit.
                if self.waiting.len() > jobsched_algos::backfill::CONSERVATIVE_TRUNCATION_DEPTH {
                    return None;
                }
                Some(self.naive_conservative(now, machine, &self.waiting).0)
            }
            ExactCheck::Priority(score) => {
                let order = self.ranked_waiting(score, now);
                match self.scenario.backfill {
                    BackfillMode::None => Some(self.naive_head(&order, machine)),
                    BackfillMode::Easy => Some(self.naive_easy(now, machine, &order)),
                    BackfillMode::Conservative => {
                        if order.len() > jobsched_algos::backfill::CONSERVATIVE_TRUNCATION_DEPTH {
                            return None;
                        }
                        Some(self.naive_conservative(now, machine, &order).0)
                    }
                }
            }
        }
    }

    /// EASY (Lifka): greedy until a head blocks; compute the head's
    /// shadow start and spare nodes from projected ends; backfill later
    /// jobs that end by the shadow or fit the spare nodes. `order` is the
    /// queue in selection order (FIFO or priority-ranked).
    fn naive_easy(&self, now: Time, machine: &Machine, order: &[usize]) -> Vec<usize> {
        let mut free = machine.free_nodes();
        let mut picks = Vec::new();
        let mut queue = order.iter().copied();
        let mut head = None;
        for i in &mut queue {
            let (nodes, _) = self.job(i);
            if nodes <= free {
                free -= nodes;
                picks.push(i);
            } else {
                head = Some(i);
                break;
            }
        }
        let Some(head) = head else { return picks };

        let mut profile = Profile::from_machine(machine, now);
        for &i in &picks {
            let (nodes, dur) = self.job(i);
            profile.reserve(nodes, now, dur);
        }
        let (head_nodes, head_dur) = self.job(head);
        let shadow = profile.earliest_start(head_nodes, head_dur, now);
        let mut extra = profile.free_at(shadow).saturating_sub(head_nodes);

        for i in queue {
            if free == 0 {
                break;
            }
            let (nodes, dur) = self.job(i);
            if nodes > free {
                continue;
            }
            if now + dur <= shadow {
                free -= nodes;
                picks.push(i);
            } else if nodes <= extra {
                free -= nodes;
                extra -= nodes;
                picks.push(i);
            }
        }
        picks
    }

    /// Conservative: book a reservation for every queued job in `order`
    /// (FIFO or priority-ranked); start exactly those whose reservation
    /// is `now`. Returns the picks and each booked start (the no-delay
    /// promise — only meaningful for the FIFO order).
    fn naive_conservative(
        &self,
        now: Time,
        machine: &Machine,
        order: &[usize],
    ) -> (Vec<usize>, Vec<(usize, Time)>) {
        let mut profile = Profile::from_machine(machine, now);
        let mut picks = Vec::new();
        let mut booked = Vec::new();
        for &i in order {
            let (nodes, dur) = self.job(i);
            let start = profile.earliest_start(nodes, dur, now);
            profile.reserve(nodes, start, dur);
            booked.push((i, start));
            if start == now {
                picks.push(i);
            }
            if profile.free_at(now) == 0 {
                break;
            }
        }
        (picks, booked)
    }

    fn violate(&mut self, msg: String) {
        self.violations.push(msg);
    }
}

impl Scheduler for OracleScheduler<'_> {
    fn name(&self) -> String {
        format!("oracle({})", self.inner.name())
    }

    fn submit(&mut self, job: JobRequest, now: Time) {
        let i = job.id.index();
        if self.started[i].is_some() {
            // Remainder of a preempted job re-entering the queue: the
            // restart must not trip the double-start audit, and every
            // differential must score the remainder request.
            self.started[i] = None;
        }
        self.view[i] = (job.submit, job.requested_time, job.nodes);
        let pos = self.waiting.partition_point(|&w| w < i);
        self.waiting.insert(pos, i);
        self.inner.submit(job, now);
    }

    fn job_finished(&mut self, id: JobId, now: Time) {
        self.inner.job_finished(id, now);
    }

    fn cancel(&mut self, id: JobId, now: Time) {
        self.cancelled[id.index()] = true;
        self.waiting.retain(|&i| i != id.index());
        self.inner.cancel(id, now);
    }

    fn capacity_changed(&mut self, now: Time) {
        self.inner.capacity_changed(now);
    }

    fn select_starts(&mut self, now: Time, machine: &Machine) -> Vec<JobId> {
        // Book no-delay promises for first-seen jobs *before* the real
        // scheduler acts (machine state is pre-start). Binding only when
        // the projected calendar is the real one: exact estimates, no
        // faults (see module docs for why an early finish legitimately
        // breaks first-sight promises).
        if self.exact == ExactCheck::FcfsConservative
            && self.promises_bind
            && self.waiting.len() <= jobsched_algos::backfill::CONSERVATIVE_TRUNCATION_DEPTH
        {
            let (_, booked) = self.naive_conservative(now, machine, &self.waiting);
            for (i, start) in booked {
                if self.guarantees[i].is_none() {
                    self.guarantees[i] = Some(start);
                }
            }
        }

        let expected = self.expected_picks(now, machine);
        let picks = self.inner.select_starts(now, machine);

        let mut free = machine.free_nodes();
        // Typed machines additionally demand per-pool feasibility: a pick
        // must fit the free nodes of the one class its hardware request
        // resolves to, not just the machine-wide total.
        let mut free_by_class: Vec<u32> = (0..machine.class_count())
            .map(|c| machine.free_in(ClassId(c as u8)))
            .collect();
        for &id in &picks {
            let i = id.index();
            let job = self.scenario.jobs[i];
            if !self.waiting.contains(&i) {
                self.violate(format!("t={now}: picked {id} which is not waiting"));
            }
            if self.cancelled[i] {
                self.violate(format!("t={now}: picked cancelled job {id}"));
            }
            if let Some(prev) = self.started[i] {
                self.violate(format!("t={now}: job {id} started twice (first t={prev})"));
            }
            if now < job.submit {
                self.violate(format!(
                    "t={now}: job {id} started before its submission at {}",
                    job.submit
                ));
            }
            if job.nodes > free {
                self.violate(format!(
                    "t={now}: job {id} needs {} nodes but only {free} remain free",
                    job.nodes
                ));
            } else {
                free -= job.nodes;
            }
            if let Some(layout) = &self.layout {
                let class = layout
                    .resolve(job.node_type, job.memory_mb, job.nodes)
                    .expect("validated scenario jobs resolve");
                let pool = &mut free_by_class[class.index()];
                if job.nodes > *pool {
                    self.violate(format!(
                        "t={now}: job {id} needs {} class-{class} nodes but only \
                         {pool} remain free in that pool",
                        job.nodes
                    ));
                } else {
                    *pool -= job.nodes;
                }
            }
            if let Some(promise) = self.guarantees[i] {
                if now > promise {
                    self.violate(format!(
                        "t={now}: job {id} starts after its conservative \
                         no-delay promise of t={promise}"
                    ));
                }
            }
        }

        if let Some(expected) = expected {
            let actual: Vec<usize> = picks.iter().map(|id| id.index()).collect();
            if expected != actual {
                self.violate(format!(
                    "t={now}: {:?} differential mismatch — naive picks {expected:?}, \
                     scheduler picked {actual:?} (queue {:?})",
                    self.exact, self.waiting
                ));
            }
        }

        for &id in &picks {
            self.started[id.index()] = Some(now);
            self.waiting.retain(|&i| i != id.index());
        }
        picks
    }

    fn queue_len(&self) -> usize {
        self.inner.queue_len()
    }

    fn next_wakeup(&self, now: Time) -> Option<Time> {
        self.inner.next_wakeup(now)
    }
}

/// Run the scenario through the real engine under the auditing wrapper
/// and return every violation found (empty = clean). Panics from the
/// engine or scheduler (overcommit, deadlock, double-start, …) are
/// captured as violations.
pub fn check_scenario(scenario: &Scenario) -> Vec<String> {
    scenario
        .validate()
        .unwrap_or_else(|e| panic!("invalid scenario handed to the oracle: {e}"));
    let workload = scenario.workload();
    let plan = scenario.fault_plan();
    let mut oracle = OracleScheduler::new(scenario);

    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        simulate_with_faults(&workload, &mut oracle, &plan)
    }));
    let mut violations = std::mem::take(&mut oracle.violations);
    match outcome {
        Ok(outcome) => violations.extend(check_outcome(scenario, &workload, &outcome)),
        Err(panic) => violations.push(format!("simulation panicked: {}", panic_msg(&panic))),
    }
    violations.extend(stream_differential(scenario));
    violations
}

/// Batch-vs-stream differential: replay the scenario through the
/// retained monolithic engine loop
/// ([`jobsched_sim::simulate_batch_with_faults`]) *and* the streaming
/// pipeline behind [`jobsched_sim::simulate_with_faults`], each with a
/// fresh scheduler instance, and demand identical outcomes — schedule,
/// fault log, event and decision-round counts, peak queue depth
/// (`scheduler_cpu` is wall-clock and excluded). Contract-violation
/// panics must also agree: both paths panic with the same message, or
/// neither panics. Runs as part of [`check_scenario`], so every fuzz
/// case and committed corpus reproducer exercises it.
pub fn stream_differential(scenario: &Scenario) -> Vec<String> {
    let workload = scenario.workload();
    let plan = scenario.fault_plan();
    let batch = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut scheduler = scenario.scheduler();
        simulate_batch_with_faults(&workload, &mut *scheduler, &plan)
    }));
    let stream = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut scheduler = scenario.scheduler();
        simulate_with_faults(&workload, &mut *scheduler, &plan)
    }));

    let mut violations = Vec::new();
    match (batch, stream) {
        (Ok(batch), Ok(stream)) => {
            if batch.schedule != stream.schedule {
                violations.push(format!(
                    "stream differential: schedules diverge — batch {:?} vs stream {:?}",
                    batch.schedule, stream.schedule
                ));
            }
            if batch.faults != stream.faults {
                violations.push(format!(
                    "stream differential: fault logs diverge — batch {:?} vs stream {:?}",
                    batch.faults, stream.faults
                ));
            }
            for (what, b, s) in [
                ("events", batch.events, stream.events),
                (
                    "decision_rounds",
                    batch.decision_rounds,
                    stream.decision_rounds,
                ),
                (
                    "peak_queue",
                    batch.peak_queue as u64,
                    stream.peak_queue as u64,
                ),
            ] {
                if b != s {
                    violations.push(format!(
                        "stream differential: {what} diverge — batch {b} vs stream {s}"
                    ));
                }
            }
        }
        (Err(batch), Err(stream)) => {
            let (b, s) = (panic_msg(&batch), panic_msg(&stream));
            if b != s {
                violations.push(format!(
                    "stream differential: panic messages diverge — batch \"{b}\" vs stream \"{s}\""
                ));
            }
        }
        (Ok(_), Err(panic)) => violations.push(format!(
            "stream differential: stream panicked where batch succeeded: {}",
            panic_msg(&panic)
        )),
        (Err(panic), Ok(_)) => violations.push(format!(
            "stream differential: batch panicked where stream succeeded: {}",
            panic_msg(&panic)
        )),
    }
    violations
}

fn panic_msg(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).into()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

/// First-principles audit of a finished run: capacity, lifecycle
/// consistency against the fault log, FCFS monotonicity, and objective
/// recomputation.
pub fn check_outcome(
    scenario: &Scenario,
    workload: &Workload,
    outcome: &SimOutcome,
) -> Vec<String> {
    let mut violations = Vec::new();
    let schedule = &outcome.schedule;

    // Fault log digested per job: the first cancellation outcome wins
    // (the engine silently drops duplicates of an effective cancel).
    let mut cancel_phase: Vec<Option<CancelPhase>> = vec![None; scenario.jobs.len()];
    let mut cancel_at: Vec<Option<Time>> = vec![None; scenario.jobs.len()];
    for f in &outcome.faults {
        if let FaultOutcome::Cancelled { id, at, phase } = f {
            if cancel_phase[id.index()].is_none() {
                cancel_phase[id.index()] = Some(*phase);
                cancel_at[id.index()] = Some(*at);
            }
        }
    }

    // Capacity sweep: committed nodes (job allocation spans + drain
    // grants) must never exceed the machine, applying releases before
    // acquisitions at equal instants. Charged spans, not placement
    // envelopes: a preempted job's envelope covers the gap where its
    // nodes were free (and possibly given to someone else), so sweeping
    // envelopes would report phantom overcommits.
    let mut events: Vec<(Time, i64)> = Vec::new();
    for (i, job) in scenario.jobs.iter().enumerate() {
        if let Some(spans) = schedule.charged_spans(JobId(i as u32), job.nodes) {
            for s in spans {
                events.push((s.start, s.nodes as i64));
                events.push((s.end, -(s.nodes as i64)));
            }
        }
    }
    for f in &outcome.faults {
        if let FaultOutcome::Drained {
            at, granted, until, ..
        } = f
        {
            if *granted > 0 {
                events.push((*at, *granted as i64));
                events.push((*until, -(*granted as i64)));
            }
        }
    }
    events.sort_by_key(|&(t, delta)| (t, delta));
    let mut committed: i64 = 0;
    for (t, delta) in events {
        committed += delta;
        if committed > scenario.machine_nodes as i64 {
            violations.push(format!(
                "t={t}: {committed} nodes committed on a {}-node machine",
                scenario.machine_nodes
            ));
        }
    }

    // Per-class capacity sweep (typed scenarios): each pool must hold its
    // own placements and drain grants — a machine-wide sweep cannot see a
    // wide-pool overcommit hidden by free thin nodes.
    if let Some(layout) = scenario.layout() {
        for (ci, spec) in layout.classes().iter().enumerate() {
            let class = ClassId(ci as u8);
            let mut events: Vec<(Time, i64)> = Vec::new();
            for (i, job) in scenario.jobs.iter().enumerate() {
                if layout.resolve(job.node_type, job.memory_mb, job.nodes) != Some(class) {
                    continue;
                }
                if let Some(spans) = schedule.charged_spans(JobId(i as u32), job.nodes) {
                    for s in spans {
                        events.push((s.start, s.nodes as i64));
                        events.push((s.end, -(s.nodes as i64)));
                    }
                }
            }
            for f in &outcome.faults {
                if let FaultOutcome::Drained {
                    at,
                    class: c,
                    granted,
                    until,
                    ..
                } = f
                {
                    if *c == class && *granted > 0 {
                        events.push((*at, *granted as i64));
                        events.push((*until, -(*granted as i64)));
                    }
                }
            }
            events.sort_by_key(|&(t, delta)| (t, delta));
            let mut committed: i64 = 0;
            for (t, delta) in events {
                committed += delta;
                if committed > spec.count as i64 {
                    violations.push(format!(
                        "t={t}: {committed} nodes committed in class {class} of {} nodes",
                        spec.count
                    ));
                }
            }
        }
    }

    // Preemption audit: every *applied* preemption must show up in the
    // schedule as a closed span ending exactly at the preemption instant,
    // and the span that follows it (the resume) must not start before the
    // requeue instant the engine logged. Segment well-formedness
    // (ordering, no self-overlap, positive spans) rides on the same walk.
    for f in &outcome.faults {
        let FaultOutcome::Preempted {
            id,
            at,
            applied,
            resume_at,
        } = f
        else {
            continue;
        };
        if !*applied {
            continue;
        }
        let Some(segs) = schedule.segments(*id) else {
            violations.push(format!(
                "preempt of {id} at t={at} applied but the job has no segment union"
            ));
            continue;
        };
        match segs.iter().position(|s| s.end == *at) {
            None => violations.push(format!(
                "preempt of {id} at t={at} applied but no span closes there ({segs:?})"
            )),
            Some(k) => {
                if let Some(next) = segs.get(k + 1) {
                    if next.start < *resume_at {
                        violations.push(format!(
                            "{id} resumed at t={} before its requeue instant t={resume_at}",
                            next.start
                        ));
                    }
                }
            }
        }
    }
    for (i, job) in scenario.jobs.iter().enumerate() {
        let id = JobId(i as u32);
        if let Some(segs) = schedule.segments(id) {
            if segs.is_empty() {
                violations.push(format!("{id}: empty segment union"));
            }
            for s in segs {
                if s.end <= s.start {
                    violations.push(format!("{id}: degenerate span {s:?}"));
                }
                if s.nodes == 0 || s.nodes > job.nodes {
                    violations.push(format!(
                        "{id}: span {s:?} outside the job's rigid width {}",
                        job.nodes
                    ));
                }
            }
            for w in segs.windows(2) {
                if w[1].start < w[0].end {
                    violations.push(format!(
                        "{id}: spans overlap or run backwards ({:?} then {:?})",
                        w[0], w[1]
                    ));
                }
            }
        }
    }

    // Per-job lifecycle consistency.
    for (i, job) in scenario.jobs.iter().enumerate() {
        let id = JobId(i as u32);
        let placement = schedule.placement(id);
        match cancel_phase[i] {
            Some(CancelPhase::PreSubmit) | Some(CancelPhase::Queued) => {
                if let Some(p) = placement {
                    violations.push(format!(
                        "job {id} cancelled in phase {:?} but holds placement {p:?}",
                        cancel_phase[i].unwrap()
                    ));
                }
            }
            Some(CancelPhase::Running) | Some(CancelPhase::Preempted) => match placement {
                None => violations.push(format!(
                    "job {id} cancelled in phase {:?} but unplaced",
                    cancel_phase[i].unwrap()
                )),
                Some(p) => {
                    if Some(p.completion) != cancel_at[i] {
                        violations.push(format!(
                            "job {id} killed at t={:?} but completion is {}",
                            cancel_at[i], p.completion
                        ));
                    }
                }
            },
            Some(CancelPhase::AlreadyFinished) | None => match placement {
                None => violations.push(format!("job {id} never ran")),
                Some(p) => {
                    if p.start < job.submit {
                        violations.push(format!(
                            "job {id} started at {} before its submission at {}",
                            p.start, job.submit
                        ));
                    }
                    // Rule 2 over *charged* time: a preempted job's
                    // envelope includes its suspension gaps, but the
                    // summed span durations must equal the effective
                    // runtime exactly — a resume that loses or repeats
                    // work shows up here.
                    let effective = job.runtime.min(job.requested);
                    let charged = schedule.charged_time(id).expect("placed jobs are charged");
                    if charged != effective {
                        violations.push(format!(
                            "job {id} charged {charged} but Rule 2 dictates {effective}"
                        ));
                    }
                }
            },
        }
    }

    // FCFS start monotonicity: with head-blocking selection, placed jobs
    // start in submission order (cancelled jobs drop out of the prefix).
    // On a partitioned machine each class queue advances independently, so
    // the order is only promised among jobs resolving to the same class.
    // The priority encoding of FCFS (score = -wait, ties by id) makes the
    // same promise — the bit-identity pin rides on it.
    let fcfs_like = matches!(
        scenario.policy,
        PolicyKind::Fcfs | PolicyKind::Priority(ScoreFn::Fcfs)
    );
    if fcfs_like && scenario.backfill == BackfillMode::None {
        let layout = scenario.layout();
        let class_of = |j: &crate::scenario::ScenarioJob| match &layout {
            Some(l) => l
                .resolve(j.node_type, j.memory_mb, j.nodes)
                .expect("validated scenario jobs resolve"),
            None => ClassId(0),
        };
        let mut last: Vec<Option<(JobId, Time)>> = vec![None; scenario.classes.len().max(1)];
        for (i, j) in scenario.jobs.iter().enumerate() {
            let id = JobId(i as u32);
            if let Some(p) = schedule.placement(id) {
                let c = class_of(j).index();
                if let Some((prev_id, prev_start)) = last[c] {
                    if p.start < prev_start {
                        violations.push(format!(
                            "FCFS monotonicity: {id} starts at {} before {prev_id} at {prev_start} (class {c})",
                            p.start
                        ));
                    }
                }
                last[c] = Some((id, p.start));
            }
        }
    }

    // Objective recomputation from first principles (cancellation- and
    // preemption-free runs only: the §4 objectives are defined over
    // complete schedules, and the AWRT consumption weight is specified
    // over the contiguous envelope, which preemption stretches).
    if scenario.cancels.is_empty() && scenario.preempts.is_empty() {
        let n = scenario.jobs.len() as f64;
        let mut art = 0.0;
        let mut awrt = 0.0;
        let mut complete = true;
        for (i, job) in scenario.jobs.iter().enumerate() {
            match schedule.placement(JobId(i as u32)) {
                Some(p) => {
                    let response = (p.completion - job.submit) as f64;
                    let area = job.runtime.min(job.requested) as f64 * job.nodes as f64;
                    art += response / n;
                    awrt += area * response / n;
                }
                None => complete = false,
            }
        }
        if !complete {
            violations.push("cancellation-free run left jobs unplaced".into());
        } else {
            for (name, naive, metric) in [
                ("ART", art, AvgResponseTime.cost(workload, schedule)),
                (
                    "AWRT",
                    awrt,
                    AvgWeightedResponseTime.cost(workload, schedule),
                ),
            ] {
                let tolerance = 1e-9 * naive.abs().max(1.0);
                if (naive - metric).abs() > tolerance {
                    violations.push(format!(
                        "{name} mismatch: first-principles {naive} vs metrics {metric}"
                    ));
                }
            }
        }
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{broken_scenario, random_scenario};
    use crate::scenario::{CancelSpec, DrainSpec, Mutation, PreemptSpec, ScenarioJob};
    use jobsched_algos::scheduler::ProfileMode;
    use jobsched_sim::ScheduleRecord;

    fn job(submit: Time, nodes: u32, requested: Time, runtime: Time) -> ScenarioJob {
        ScenarioJob {
            submit,
            nodes,
            requested,
            runtime,
            node_type: jobsched_workload::NodeType::Thin,
            memory_mb: 0,
        }
    }

    fn base_scenario(policy: PolicyKind, backfill: BackfillMode) -> Scenario {
        Scenario {
            machine_nodes: 10,
            policy,
            backfill,
            profile_mode: ProfileMode::Incremental,
            caching: true,
            mutation: None,
            classes: Vec::new(),
            jobs: vec![job(0, 6, 100, 100), job(1, 8, 100, 100), job(2, 4, 40, 40)],
            cancels: Vec::new(),
            drains: Vec::new(),
            preempts: Vec::new(),
        }
    }

    /// A 12-thin + 4-wide machine with jobs in both pools: the wide head
    /// is narrower than the machine but wider than its pool, so any
    /// scheduler reasoning machine-wide would overcommit the wide pool.
    fn hetero_scenario(policy: PolicyKind, backfill: BackfillMode) -> Scenario {
        use jobsched_workload::{NodeClassSpec, NodeType};
        let mut s = base_scenario(policy, backfill);
        s.machine_nodes = 16;
        s.classes = vec![
            NodeClassSpec {
                node_type: NodeType::Thin,
                memory_mb: 512,
                count: 12,
            },
            NodeClassSpec {
                node_type: NodeType::Wide,
                memory_mb: 2048,
                count: 4,
            },
        ];
        s.jobs = vec![
            job(0, 8, 100, 100),
            {
                let mut j = job(0, 3, 200, 150);
                j.node_type = NodeType::Wide;
                j.memory_mb = 1024;
                j
            },
            {
                let mut j = job(1, 2, 50, 50);
                j.node_type = NodeType::Wide;
                j
            },
            {
                // Thin request escalating into the wide pool on memory.
                let mut j = job(2, 2, 80, 60);
                j.memory_mb = 2048;
                j
            },
            job(3, 6, 40, 40),
        ];
        s
    }

    #[test]
    fn clean_configurations_produce_no_violations() {
        for backfill in [
            BackfillMode::None,
            BackfillMode::Conservative,
            BackfillMode::Easy,
        ] {
            let s = base_scenario(PolicyKind::Fcfs, backfill);
            assert_eq!(check_scenario(&s), Vec::<String>::new(), "{backfill:?}");
        }
        let s = base_scenario(PolicyKind::GareyGraham, BackfillMode::None);
        assert_eq!(check_scenario(&s), Vec::<String>::new());
    }

    #[test]
    fn faults_do_not_trip_the_oracle_on_the_real_scheduler() {
        let mut s = base_scenario(PolicyKind::Fcfs, BackfillMode::Easy);
        s.cancels.push(CancelSpec { at: 50, job: 0 });
        s.drains.push(DrainSpec {
            at: 10,
            nodes: 2,
            until: 60,
            class: 0,
        });
        assert_eq!(check_scenario(&s), Vec::<String>::new());
    }

    #[test]
    fn hetero_configurations_produce_no_violations() {
        for backfill in [
            BackfillMode::None,
            BackfillMode::Conservative,
            BackfillMode::Easy,
        ] {
            let s = hetero_scenario(PolicyKind::Fcfs, backfill);
            assert_eq!(check_scenario(&s), Vec::<String>::new(), "{backfill:?}");
        }
        let s = hetero_scenario(PolicyKind::GareyGraham, BackfillMode::None);
        assert_eq!(check_scenario(&s), Vec::<String>::new());
        let s = hetero_scenario(PolicyKind::SmartFfia, BackfillMode::Easy);
        assert_eq!(check_scenario(&s), Vec::<String>::new());
    }

    #[test]
    fn hetero_per_class_faults_do_not_trip_the_oracle() {
        let mut s = hetero_scenario(PolicyKind::Fcfs, BackfillMode::Easy);
        // Drain the whole wide pool and cancel the scarce-class job it
        // would have hosted.
        s.drains.push(DrainSpec {
            at: 120,
            nodes: 4,
            until: 400,
            class: 1,
        });
        s.cancels.push(CancelSpec { at: 150, job: 1 });
        assert_eq!(check_scenario(&s), Vec::<String>::new());
    }

    #[test]
    fn clean_priority_configurations_produce_no_violations() {
        for score in ScoreFn::ALL {
            for backfill in [
                BackfillMode::None,
                BackfillMode::Conservative,
                BackfillMode::Easy,
            ] {
                let s = base_scenario(PolicyKind::Priority(score), backfill);
                assert_eq!(
                    check_scenario(&s),
                    Vec::<String>::new(),
                    "{score:?} {backfill:?}"
                );
            }
        }
    }

    #[test]
    fn priority_faults_do_not_trip_the_oracle() {
        for score in [ScoreFn::Wfp3, ScoreFn::Sjf, ScoreFn::Unicef] {
            let mut s = base_scenario(PolicyKind::Priority(score), BackfillMode::Easy);
            s.cancels.push(CancelSpec { at: 50, job: 0 });
            s.drains.push(DrainSpec {
                at: 10,
                nodes: 2,
                until: 60,
                class: 0,
            });
            assert_eq!(check_scenario(&s), Vec::<String>::new(), "{score:?}");
        }
    }

    #[test]
    fn hetero_priority_configurations_produce_no_violations() {
        for backfill in [
            BackfillMode::None,
            BackfillMode::Conservative,
            BackfillMode::Easy,
        ] {
            let s = hetero_scenario(PolicyKind::Priority(ScoreFn::Wfp), backfill);
            assert_eq!(check_scenario(&s), Vec::<String>::new(), "{backfill:?}");
        }
    }

    #[test]
    fn preemption_faults_do_not_trip_the_oracle() {
        for backfill in [
            BackfillMode::None,
            BackfillMode::Conservative,
            BackfillMode::Easy,
        ] {
            let mut s = base_scenario(PolicyKind::Fcfs, backfill);
            s.preempts.push(PreemptSpec {
                at: 30,
                job: 0,
                resume_at: 120,
            });
            assert_eq!(check_scenario(&s), Vec::<String>::new(), "{backfill:?}");
        }
        for score in [ScoreFn::Wfp3, ScoreFn::Sjf] {
            let mut s = base_scenario(PolicyKind::Priority(score), BackfillMode::Easy);
            s.preempts.push(PreemptSpec {
                at: 30,
                job: 0,
                resume_at: 120,
            });
            assert_eq!(check_scenario(&s), Vec::<String>::new(), "{score:?}");
        }
        let mut s = hetero_scenario(PolicyKind::Fcfs, BackfillMode::Easy);
        s.preempts.push(PreemptSpec {
            at: 30,
            job: 0,
            resume_at: 150,
        });
        assert_eq!(check_scenario(&s), Vec::<String>::new());
    }

    #[test]
    fn preempting_a_queued_job_is_a_recorded_no_op() {
        // Job 1 is head-blocked behind job 0 at t=30: the preemption must
        // log `applied: false` and leave the schedule untouched.
        let mut s = base_scenario(PolicyKind::Fcfs, BackfillMode::None);
        s.preempts.push(PreemptSpec {
            at: 30,
            job: 1,
            resume_at: 60,
        });
        assert_eq!(check_scenario(&s), Vec::<String>::new());
        let outcome = simulate_with_faults(&s.workload(), &mut *s.scheduler(), &s.fault_plan());
        assert!(outcome
            .faults
            .iter()
            .any(|f| matches!(f, FaultOutcome::Preempted { applied: false, .. })));
    }

    #[test]
    fn cancel_while_preempted_is_audited_clean() {
        let mut s = base_scenario(PolicyKind::Fcfs, BackfillMode::None);
        s.preempts.push(PreemptSpec {
            at: 30,
            job: 0,
            resume_at: 500,
        });
        s.cancels.push(CancelSpec { at: 60, job: 0 });
        assert_eq!(check_scenario(&s), Vec::<String>::new());
    }

    #[test]
    fn broken_resume_is_caught_by_the_outcome_audit() {
        let mut s = base_scenario(PolicyKind::Fcfs, BackfillMode::None);
        s.preempts.push(PreemptSpec {
            at: 30,
            job: 0,
            resume_at: 120,
        });
        let workload = s.workload();
        let mut outcome = simulate_with_faults(&workload, &mut *s.scheduler(), &s.fault_plan());
        assert_eq!(check_outcome(&s, &workload, &outcome), Vec::<String>::new());

        // Impostor resume: re-record every job rigidly over its envelope,
        // as an engine that forgot to close the preempted span would.
        let mut broken = ScheduleRecord::new(s.machine_nodes, s.jobs.len());
        for i in 0..s.jobs.len() {
            if let Some(p) = outcome.schedule.placement(JobId(i as u32)) {
                broken.place(JobId(i as u32), p.start, p.completion);
            }
        }
        outcome.schedule = broken;
        let violations = check_outcome(&s, &workload, &outcome);
        assert!(
            violations
                .iter()
                .any(|v| v.contains("no span closes") || v.contains("no segment union")),
            "preempt audit silent on a span-less schedule: {violations:?}"
        );
        assert!(
            violations.iter().any(|v| v.contains("Rule 2")),
            "charged-time audit silent on an envelope charge: {violations:?}"
        );
        assert!(
            violations.iter().any(|v| v.contains("committed")),
            "capacity sweep silent on overlapping envelopes: {violations:?}"
        );
    }

    #[test]
    fn inverted_wfp_impostor_is_caught() {
        // Machine of 10: job 0 holds all of it until t=100. At t=100 the
        // real WFP ranks job 2 (tiny estimate, huge wait/est ratio) ahead
        // of job 1; the inverted impostor runs the order backwards and
        // head-blocks on job 1 instead.
        let mut s = base_scenario(PolicyKind::Priority(ScoreFn::Wfp), BackfillMode::None);
        s.jobs = vec![job(0, 10, 100, 100), job(1, 6, 100, 100), job(50, 5, 1, 1)];
        s.mutation = Some(Mutation::InvertedPriority);
        let violations = check_scenario(&s);
        assert!(
            violations
                .iter()
                .any(|v| v.contains("differential mismatch")),
            "expected a priority differential violation, got {violations:?}"
        );
    }

    #[test]
    fn lifo_impostor_is_caught() {
        let mut s = base_scenario(PolicyKind::Fcfs, BackfillMode::None);
        s.mutation = Some(Mutation::Lifo);
        let violations = check_scenario(&s);
        assert!(
            violations
                .iter()
                .any(|v| v.contains("differential mismatch")),
            "expected a differential violation, got {violations:?}"
        );
    }

    #[test]
    fn generated_stream_is_clean_smoke() {
        for i in 0..40 {
            let s = random_scenario(0xBEEF, i);
            let violations = check_scenario(&s);
            assert!(
                violations.is_empty(),
                "scenario {i} violated:\n{}\n{}",
                violations.join("\n"),
                s.to_text()
            );
        }
    }

    #[test]
    fn stream_differential_is_clean_across_configurations() {
        for backfill in [
            BackfillMode::None,
            BackfillMode::Conservative,
            BackfillMode::Easy,
        ] {
            let mut s = base_scenario(PolicyKind::Fcfs, backfill);
            assert_eq!(stream_differential(&s), Vec::<String>::new());
            s.cancels.push(CancelSpec { at: 50, job: 0 });
            s.drains.push(DrainSpec {
                at: 10,
                nodes: 2,
                until: 60,
                class: 0,
            });
            assert_eq!(
                stream_differential(&s),
                Vec::<String>::new(),
                "{backfill:?}"
            );
        }
    }

    #[test]
    fn stream_differential_agrees_on_panicking_schedulers() {
        // A LIFO impostor under FCFS doesn't panic, it just mis-picks —
        // batch and stream must still agree event for event on it.
        let mut s = base_scenario(PolicyKind::Fcfs, BackfillMode::None);
        s.mutation = Some(Mutation::Lifo);
        assert_eq!(stream_differential(&s), Vec::<String>::new());
    }

    #[test]
    fn generated_stream_differential_smoke() {
        for i in 0..25 {
            let s = random_scenario(0xD1FF, i);
            let violations = stream_differential(&s);
            assert!(
                violations.is_empty(),
                "scenario {i} diverged:\n{}\n{}",
                violations.join("\n"),
                s.to_text()
            );
        }
    }

    #[test]
    fn broken_generated_stream_is_eventually_caught() {
        let caught = (0..20).any(|i| !check_scenario(&broken_scenario(0xBEEF, i)).is_empty());
        assert!(caught, "no generated LIFO scenario tripped the oracle");
    }
}
