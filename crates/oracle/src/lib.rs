//! `jobsched-oracle`: adversarial simulation oracle for the scheduler
//! stack.
//!
//! The paper's evaluation (§3, §6) trusts the simulator and the
//! schedulers to be correct; this crate is the adversary that earns that
//! trust. It closes the loop the unit and property tests leave open:
//! randomized *fault-injected* campaigns — jobs finishing early or
//! overrunning their estimates, users retracting queued and running
//! jobs, nodes draining out of service mid-backlog — replayed through
//! the real [`jobsched_sim::engine`] and audited against independent
//! re-implementations of the published algorithms.
//!
//! * [`scenario`] — a self-contained adversarial case (workload ×
//!   algorithm configuration × fault plan) with a line-oriented replay
//!   format for committing shrunk counterexamples to `tests/corpus/`;
//! * [`gen`] — deterministic randomized scenario generation from the
//!   hand-rolled xoshiro generator (seed + index pins a scenario);
//! * [`invariants`] — the oracle proper: per-decision differentials
//!   (exact pick equality vs naive FCFS / Garey & Graham / EASY /
//!   conservative re-implementations), the §5.2 conservative no-delay
//!   guarantee, capacity sweeps over placements *and* drain grants,
//!   first-principles ART/AWRT recomputation, and the batch-vs-stream
//!   engine differential ([`invariants::stream_differential`]: the
//!   monolithic loop and the streaming pipeline must produce identical
//!   outcomes on every scenario);
//! * [`shrink`] — delta-debugging reduction of violating scenarios to
//!   minimal reproducers.
//!
//! The fuzz harness lives in `tests/oracle_fuzz.rs` (budgeted, seed
//! logged, counterexamples shrunk and written as `.scn` files);
//! `tests/corpus_replay.rs` re-checks every committed reproducer on each
//! `cargo test` run.

pub mod gen;
pub mod invariants;
pub mod scenario;
pub mod shrink;

pub use gen::{broken_priority_scenario, broken_scenario, random_scenario};
pub use invariants::{check_outcome, check_scenario, stream_differential};
pub use scenario::{CancelSpec, DrainSpec, Mutation, Scenario, ScenarioJob};
pub use shrink::{shrink, shrink_with_budget};
