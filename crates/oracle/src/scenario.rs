//! Scenario: one self-contained adversarial simulation case.
//!
//! A scenario bundles everything needed to reproduce a run bit-for-bit:
//! the machine size, the algorithm configuration under test (policy ×
//! backfill × profile mode × caching), the job stream, and the injected
//! faults (cancellations and node drains). Scenarios serialize to a
//! line-oriented text format so that shrunk counterexamples can be
//! committed to `tests/corpus/` and replayed by `cargo test` — the
//! deterministic-replay half of the oracle contract.

use jobsched_algos::scheduler::ProfileMode;
use jobsched_algos::spec::PolicyKind;
use jobsched_algos::{BackfillMode, ListScheduler, PriorityScheduler, ScoreFn};
use jobsched_sim::{
    CancelFault, DrainFault, FaultPlan, JobRequest, Machine, PreemptFault, Scheduler,
};
use jobsched_workload::{
    ClassId, JobBuilder, JobId, MachineLayout, NodeClassSpec, NodeType, Time, Workload,
};

/// One job of the scenario's stream. The index into [`Scenario::jobs`]
/// *is* the job's [`JobId`]: jobs are kept sorted by submission time so
/// that [`Workload::new`]'s stable re-sort is the identity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScenarioJob {
    /// Submission instant.
    pub submit: Time,
    /// Rigid node requirement.
    pub nodes: u32,
    /// User estimate (upper runtime limit, Rule 2).
    pub requested: Time,
    /// Actual runtime (may exceed `requested`; execution truncates).
    pub runtime: Time,
    /// Requested node hardware type (only meaningful on typed scenarios;
    /// [`NodeType::Thin`] otherwise).
    pub node_type: NodeType,
    /// Requested per-node memory in MB (0 = no constraint).
    pub memory_mb: u32,
}

/// A user retracting a job (queued, running, or already done — the
/// engine classifies the phase at injection time).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CancelSpec {
    /// Injection instant.
    pub at: Time,
    /// Index into [`Scenario::jobs`].
    pub job: usize,
}

/// A forced preemption: if the job is running at `at`, its allocation
/// span closes, its nodes free, and the remainder re-enters the queue at
/// `resume_at` (clamped past the preemption instant by the engine). A
/// preemption that finds the job not running is recorded as a no-op.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PreemptSpec {
    /// Preemption instant.
    pub at: Time,
    /// Index into [`Scenario::jobs`].
    pub job: usize,
    /// Requested requeue instant (engine clamps to `> at`).
    pub resume_at: Time,
}

/// Nodes leaving service for maintenance over `[at, until)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DrainSpec {
    /// Drain instant.
    pub at: Time,
    /// Nodes requested to drain (granted up to the free count).
    pub nodes: u32,
    /// Return-to-service instant (must be `> at`).
    pub until: Time,
    /// Node class drained (index into [`Scenario::classes`]; 0 on
    /// homogeneous scenarios). Draining a scarce pool — e.g. taking the
    /// whole wide pool offline — is exactly the per-class fault the
    /// heterogeneous invariants exist to audit.
    pub class: u8,
}

/// A deliberate, test-only scheduler defect. A scenario carrying a
/// mutation *claims* to run its declared policy but actually runs the
/// broken variant — the oracle must catch the lie. Used to validate that
/// the invariant checks have teeth.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// Head-blocking list scheduling over *reversed* queue order: starves
    /// early arrivals, violating the FCFS pick-equality and
    /// start-monotonicity invariants (but never overcommits).
    Lifo,
    /// A [`PriorityScheduler`] ranking with the score sign flipped: a
    /// broken WFP (or any scoring rule) that runs the queue backwards.
    /// Only valid on [`PolicyKind::Priority`] scenarios; the priority
    /// pick-equality differential must catch it.
    InvertedPriority,
}

/// A complete adversarial simulation case.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Scenario {
    /// Machine width in nodes.
    pub machine_nodes: u32,
    /// Ordering policy under test.
    pub policy: PolicyKind,
    /// Backfill variant under test.
    pub backfill: BackfillMode,
    /// Availability-profile implementation under test.
    pub profile_mode: ProfileMode,
    /// Whether the blocked-state cache is enabled.
    pub caching: bool,
    /// Deliberate defect (None for real-scheduler runs).
    pub mutation: Option<Mutation>,
    /// Node-class pools partitioning the machine. Empty = homogeneous
    /// machine of `machine_nodes` (the paper's configuration); non-empty
    /// pools must sum to `machine_nodes` and every job must resolve to
    /// one of them.
    pub classes: Vec<NodeClassSpec>,
    /// Job stream, sorted by `submit` (index == [`JobId`]).
    pub jobs: Vec<ScenarioJob>,
    /// Cancellation faults.
    pub cancels: Vec<CancelSpec>,
    /// Drain faults.
    pub drains: Vec<DrainSpec>,
    /// Forced-preemption faults.
    pub preempts: Vec<PreemptSpec>,
}

impl Scenario {
    /// Structural validity: index bounds, submit-sorted jobs, positive
    /// sizes within the machine, well-formed fault windows. Generated and
    /// shrunk scenarios always pass; hand-written corpus files are
    /// rejected with a message naming the defect.
    pub fn validate(&self) -> Result<(), String> {
        if self.machine_nodes == 0 {
            return Err("machine_nodes must be positive".into());
        }
        if self.jobs.is_empty() {
            return Err("scenario has no jobs".into());
        }
        if !self.classes.is_empty() {
            if self.classes.len() > 256 {
                return Err("at most 256 node classes".into());
            }
            if self.classes.iter().any(|c| c.count == 0) {
                return Err("every node class needs at least one node".into());
            }
            let total: u32 = self.classes.iter().map(|c| c.count).sum();
            if total != self.machine_nodes {
                return Err(format!(
                    "class pools sum to {total}, machine has {}",
                    self.machine_nodes
                ));
            }
        }
        let layout = self.layout();
        for (i, j) in self.jobs.iter().enumerate() {
            if j.nodes == 0 || j.nodes > self.machine_nodes {
                return Err(format!("job {i}: nodes {} out of range", j.nodes));
            }
            if j.requested == 0 || j.runtime == 0 {
                return Err(format!("job {i}: times must be positive"));
            }
            if let Some(layout) = &layout {
                if layout.resolve(j.node_type, j.memory_mb, j.nodes).is_none() {
                    return Err(format!("job {i}: no eligible node class"));
                }
            }
        }
        if self.jobs.windows(2).any(|w| w[0].submit > w[1].submit) {
            return Err("jobs must be sorted by submit time".into());
        }
        // A cancel may precede its job's submission: the engine suppresses
        // the submission entirely (the PreSubmit phase), so any instant is
        // a valid injection point.
        for (i, c) in self.cancels.iter().enumerate() {
            if c.job >= self.jobs.len() {
                return Err(format!("cancel {i}: job index {} out of range", c.job));
            }
        }
        for (i, p) in self.preempts.iter().enumerate() {
            if p.job >= self.jobs.len() {
                return Err(format!("preempt {i}: job index {} out of range", p.job));
            }
            if p.resume_at <= p.at {
                return Err(format!("preempt {i}: resume_at must exceed at"));
            }
        }
        for (i, d) in self.drains.iter().enumerate() {
            if d.nodes == 0 {
                return Err(format!("drain {i}: nodes must be positive"));
            }
            if d.until <= d.at {
                return Err(format!("drain {i}: until must exceed at"));
            }
            if d.class as usize >= self.classes.len().max(1) {
                return Err(format!("drain {i}: class {} out of range", d.class));
            }
        }
        if self.policy == PolicyKind::GareyGraham && self.backfill != BackfillMode::None {
            return Err("Garey&Graham only supports the list column".into());
        }
        if self.mutation == Some(Mutation::InvertedPriority)
            && !matches!(self.policy, PolicyKind::Priority(_))
        {
            return Err("inverted-priority mutation needs a priority policy".into());
        }
        Ok(())
    }

    /// The machine layout of a typed scenario, `None` when homogeneous.
    pub fn layout(&self) -> Option<MachineLayout> {
        (!self.classes.is_empty()).then(|| MachineLayout::new(self.classes.clone()))
    }

    /// Materialise the workload. Because jobs are submit-sorted,
    /// `jobs[i]` becomes `JobId(i)` — fault specs and invariant checks
    /// rely on that identity.
    pub fn workload(&self) -> Workload {
        debug_assert!(self.validate().is_ok(), "building an invalid scenario");
        let jobs = self
            .jobs
            .iter()
            .enumerate()
            .map(|(i, j)| {
                JobBuilder::new(JobId(i as u32))
                    .submit(j.submit)
                    .nodes(j.nodes)
                    .requested(j.requested)
                    .runtime(j.runtime)
                    .node_type(j.node_type)
                    .memory_mb(j.memory_mb)
                    .build()
            })
            .collect();
        let w = Workload::new("oracle", self.machine_nodes, jobs);
        match self.layout() {
            Some(layout) => w.with_layout(layout),
            None => w,
        }
    }

    /// The fault plan for [`jobsched_sim::simulate_with_faults`].
    pub fn fault_plan(&self) -> FaultPlan {
        FaultPlan {
            cancels: self
                .cancels
                .iter()
                .map(|c| CancelFault {
                    id: JobId(c.job as u32),
                    at: c.at,
                })
                .collect(),
            drains: self
                .drains
                .iter()
                .map(|d| DrainFault {
                    at: d.at,
                    nodes: d.nodes,
                    class: ClassId(d.class),
                    until: d.until,
                })
                .collect(),
            preempts: self
                .preempts
                .iter()
                .map(|p| PreemptFault {
                    id: JobId(p.job as u32),
                    at: p.at,
                    resume_at: p.resume_at,
                })
                .collect(),
        }
    }

    /// Build the scheduler under test — the real scheduler for the
    /// declared configuration, or the mutated impostor. Priority
    /// configurations ignore the caching flag: the family has no
    /// blocked-state cache (wait-dependent scores make it unsound), so
    /// `caching on` is a recorded no-op.
    pub fn scheduler(&self) -> Box<dyn Scheduler> {
        match (self.mutation, self.policy) {
            (Some(Mutation::Lifo), _) => Box::new(LifoScheduler::default()),
            (Some(Mutation::InvertedPriority), PolicyKind::Priority(score)) => Box::new(
                PriorityScheduler::new(score, self.backfill)
                    .with_profile_mode(self.profile_mode)
                    .with_inverted_order(true),
            ),
            (Some(Mutation::InvertedPriority), _) => {
                unreachable!("validate() rejects inverted-priority on non-priority policies")
            }
            (None, PolicyKind::Priority(score)) => Box::new(
                PriorityScheduler::new(score, self.backfill).with_profile_mode(self.profile_mode),
            ),
            (None, _) => Box::new(
                ListScheduler::new(self.policy.policy(Default::default()), self.backfill)
                    .with_profile_mode(self.profile_mode)
                    .with_caching(self.caching),
            ),
        }
    }

    /// Serialize to the line-oriented replay format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("machine {}\n", self.machine_nodes));
        out.push_str(&format!("policy {}\n", policy_token(self.policy)));
        out.push_str(&format!(
            "backfill {}\n",
            match self.backfill {
                BackfillMode::None => "none",
                BackfillMode::Conservative => "conservative",
                BackfillMode::Easy => "easy",
            }
        ));
        out.push_str(&format!(
            "profile {}\n",
            match self.profile_mode {
                ProfileMode::Rebuild => "rebuild",
                ProfileMode::Incremental => "incremental",
            }
        ));
        out.push_str(&format!(
            "caching {}\n",
            if self.caching { "on" } else { "off" }
        ));
        match self.mutation {
            Some(Mutation::Lifo) => out.push_str("mutate lifo\n"),
            Some(Mutation::InvertedPriority) => out.push_str("mutate inverted-priority\n"),
            None => {}
        }
        for c in &self.classes {
            out.push_str(&format!(
                "class {} {} {}\n",
                node_type_token(c.node_type),
                c.memory_mb,
                c.count
            ));
        }
        for j in &self.jobs {
            // Hardware attributes are appended only when set, so legacy
            // (homogeneous) corpus files round-trip byte for byte.
            if j.node_type != NodeType::Thin || j.memory_mb != 0 {
                out.push_str(&format!(
                    "job {} {} {} {} {} {}\n",
                    j.submit,
                    j.nodes,
                    j.requested,
                    j.runtime,
                    node_type_token(j.node_type),
                    j.memory_mb
                ));
            } else {
                out.push_str(&format!(
                    "job {} {} {} {}\n",
                    j.submit, j.nodes, j.requested, j.runtime
                ));
            }
        }
        for c in &self.cancels {
            out.push_str(&format!("cancel {} {}\n", c.at, c.job));
        }
        for p in &self.preempts {
            out.push_str(&format!("preempt {} {} {}\n", p.at, p.job, p.resume_at));
        }
        for d in &self.drains {
            if d.class != 0 {
                out.push_str(&format!(
                    "drain {} {} {} {}\n",
                    d.at, d.nodes, d.until, d.class
                ));
            } else {
                out.push_str(&format!("drain {} {} {}\n", d.at, d.nodes, d.until));
            }
        }
        out
    }

    /// Parse the replay format (inverse of [`Scenario::to_text`]).
    /// `#`-prefixed lines and blank lines are ignored.
    pub fn from_text(text: &str) -> Result<Scenario, String> {
        let mut s = Scenario {
            machine_nodes: 0,
            policy: PolicyKind::Fcfs,
            backfill: BackfillMode::None,
            profile_mode: ProfileMode::default(),
            caching: true,
            mutation: None,
            classes: Vec::new(),
            jobs: Vec::new(),
            cancels: Vec::new(),
            drains: Vec::new(),
            preempts: Vec::new(),
        };
        for (ln, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let key = parts.next().unwrap();
            let args: Vec<&str> = parts.collect();
            let ctx = |msg: &str| format!("line {}: {msg}", ln + 1);
            match key {
                "machine" => {
                    s.machine_nodes = parse_num(&args, 0, &ctx)?;
                }
                "policy" => {
                    s.policy = match args.first().copied() {
                        Some("fcfs") => PolicyKind::Fcfs,
                        Some("psrs") => PolicyKind::Psrs,
                        Some("smart-ffia") => PolicyKind::SmartFfia,
                        Some("smart-nfiw") => PolicyKind::SmartNfiw,
                        Some("garey-graham") => PolicyKind::GareyGraham,
                        // Priority-family rows use the scoring rule's
                        // stable tag ("sjf", "wfp3", "unicef", …).
                        Some(tok) => match ScoreFn::from_tag(tok) {
                            Some(score) => PolicyKind::Priority(score),
                            None => return Err(ctx(&format!("unknown policy {tok:?}"))),
                        },
                        None => return Err(ctx("unknown policy None")),
                    };
                }
                "backfill" => {
                    s.backfill = match args.first().copied() {
                        Some("none") => BackfillMode::None,
                        Some("conservative") => BackfillMode::Conservative,
                        Some("easy") => BackfillMode::Easy,
                        other => return Err(ctx(&format!("unknown backfill {other:?}"))),
                    };
                }
                "profile" => {
                    s.profile_mode = match args.first().copied() {
                        Some("rebuild") => ProfileMode::Rebuild,
                        Some("incremental") => ProfileMode::Incremental,
                        other => return Err(ctx(&format!("unknown profile mode {other:?}"))),
                    };
                }
                "caching" => {
                    s.caching = match args.first().copied() {
                        Some("on") => true,
                        Some("off") => false,
                        other => return Err(ctx(&format!("unknown caching flag {other:?}"))),
                    };
                }
                "mutate" => {
                    s.mutation = match args.first().copied() {
                        Some("lifo") => Some(Mutation::Lifo),
                        Some("inverted-priority") => Some(Mutation::InvertedPriority),
                        other => return Err(ctx(&format!("unknown mutation {other:?}"))),
                    };
                }
                "class" => {
                    let ty = args
                        .first()
                        .copied()
                        .and_then(parse_node_type)
                        .ok_or_else(|| ctx("unknown node type"))?;
                    s.classes.push(NodeClassSpec {
                        node_type: ty,
                        memory_mb: parse_num(&args, 1, &ctx)?,
                        count: parse_num(&args, 2, &ctx)?,
                    });
                }
                "job" => {
                    // Fields 4 (type) and 5 (memory) are optional: legacy
                    // homogeneous corpus files carry only the first four.
                    let node_type = match args.get(4).copied() {
                        None => NodeType::Thin,
                        Some(tok) => {
                            parse_node_type(tok).ok_or_else(|| ctx("unknown node type"))?
                        }
                    };
                    s.jobs.push(ScenarioJob {
                        submit: parse_num(&args, 0, &ctx)?,
                        nodes: parse_num(&args, 1, &ctx)?,
                        requested: parse_num(&args, 2, &ctx)?,
                        runtime: parse_num(&args, 3, &ctx)?,
                        node_type,
                        memory_mb: if args.len() > 5 {
                            parse_num(&args, 5, &ctx)?
                        } else {
                            0
                        },
                    });
                }
                "cancel" => {
                    s.cancels.push(CancelSpec {
                        at: parse_num(&args, 0, &ctx)?,
                        job: parse_num(&args, 1, &ctx)?,
                    });
                }
                "preempt" => {
                    s.preempts.push(PreemptSpec {
                        at: parse_num(&args, 0, &ctx)?,
                        job: parse_num(&args, 1, &ctx)?,
                        resume_at: parse_num(&args, 2, &ctx)?,
                    });
                }
                "drain" => {
                    // Field 3 (class) is optional for legacy files.
                    s.drains.push(DrainSpec {
                        at: parse_num(&args, 0, &ctx)?,
                        nodes: parse_num(&args, 1, &ctx)?,
                        until: parse_num(&args, 2, &ctx)?,
                        class: if args.len() > 3 {
                            parse_num(&args, 3, &ctx)?
                        } else {
                            0
                        },
                    });
                }
                other => return Err(ctx(&format!("unknown directive {other:?}"))),
            }
        }
        s.validate()?;
        Ok(s)
    }
}

fn node_type_token(t: NodeType) -> &'static str {
    match t {
        NodeType::Thin => "thin",
        NodeType::Wide => "wide",
        NodeType::Storage => "storage",
    }
}

fn parse_node_type(tok: &str) -> Option<NodeType> {
    match tok {
        "thin" => Some(NodeType::Thin),
        "wide" => Some(NodeType::Wide),
        "storage" => Some(NodeType::Storage),
        _ => None,
    }
}

fn policy_token(p: PolicyKind) -> &'static str {
    match p {
        PolicyKind::Fcfs => "fcfs",
        PolicyKind::Psrs => "psrs",
        PolicyKind::SmartFfia => "smart-ffia",
        PolicyKind::SmartNfiw => "smart-nfiw",
        PolicyKind::GareyGraham => "garey-graham",
        PolicyKind::Priority(s) => s.tag(),
        // Oracle scenarios drive rigid list schedulers; time-shared
        // kinds never appear in a scenario header but need a token.
        PolicyKind::Dfrs => "dfrs",
        PolicyKind::Moldable => "moldable",
    }
}

fn parse_num<T: std::str::FromStr>(
    args: &[&str],
    idx: usize,
    ctx: &dyn Fn(&str) -> String,
) -> Result<T, String> {
    args.get(idx)
        .ok_or_else(|| ctx(&format!("missing field {idx}")))?
        .parse()
        .map_err(|_| ctx(&format!("unparsable field {idx}")))
}

/// The [`Mutation::Lifo`] impostor: head-blocking list scheduling over
/// reversed submission order. Structurally sound (never overcommits,
/// always drains the queue once the machine empties) but behaviourally
/// wrong for a scheduler claiming FCFS.
#[derive(Debug, Default)]
pub struct LifoScheduler {
    waiting: Vec<JobRequest>,
}

impl Scheduler for LifoScheduler {
    fn name(&self) -> String {
        "LIFO (deliberately broken)".into()
    }

    fn submit(&mut self, job: JobRequest, _now: Time) {
        self.waiting.push(job);
    }

    fn cancel(&mut self, id: JobId, _now: Time) {
        self.waiting.retain(|j| j.id != id);
    }

    fn select_starts(&mut self, _now: Time, machine: &Machine) -> Vec<JobId> {
        let mut free = machine.free_nodes();
        let mut picks = Vec::new();
        for job in self.waiting.iter().rev() {
            if job.nodes <= free {
                free -= job.nodes;
                picks.push(job.id);
            } else {
                break;
            }
        }
        self.waiting.retain(|j| !picks.contains(&j.id));
        picks
    }

    fn queue_len(&self) -> usize {
        self.waiting.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Scenario {
        Scenario {
            machine_nodes: 256,
            policy: PolicyKind::SmartFfia,
            backfill: BackfillMode::Easy,
            profile_mode: ProfileMode::Rebuild,
            caching: false,
            mutation: None,
            classes: Vec::new(),
            jobs: vec![
                ScenarioJob {
                    submit: 0,
                    nodes: 16,
                    requested: 100,
                    runtime: 80,
                    node_type: NodeType::Thin,
                    memory_mb: 0,
                },
                ScenarioJob {
                    submit: 5,
                    nodes: 200,
                    requested: 50,
                    runtime: 70,
                    node_type: NodeType::Thin,
                    memory_mb: 0,
                },
            ],
            cancels: vec![CancelSpec { at: 40, job: 0 }],
            drains: vec![DrainSpec {
                at: 10,
                nodes: 32,
                until: 60,
                class: 0,
            }],
            preempts: vec![PreemptSpec {
                at: 20,
                job: 0,
                resume_at: 50,
            }],
        }
    }

    fn typed_sample() -> Scenario {
        let mut s = sample();
        s.machine_nodes = 64;
        s.classes = vec![
            NodeClassSpec {
                node_type: NodeType::Thin,
                memory_mb: 512,
                count: 48,
            },
            NodeClassSpec {
                node_type: NodeType::Wide,
                memory_mb: 2048,
                count: 16,
            },
        ];
        s.jobs = vec![
            ScenarioJob {
                submit: 0,
                nodes: 16,
                requested: 100,
                runtime: 80,
                node_type: NodeType::Thin,
                memory_mb: 256,
            },
            ScenarioJob {
                submit: 5,
                nodes: 8,
                requested: 50,
                runtime: 70,
                node_type: NodeType::Wide,
                memory_mb: 1024,
            },
        ];
        s.drains = vec![DrainSpec {
            at: 10,
            nodes: 16,
            until: 60,
            class: 1,
        }];
        s
    }

    #[test]
    fn text_round_trip_is_identity() {
        let s = sample();
        let parsed = Scenario::from_text(&s.to_text()).unwrap();
        assert_eq!(parsed, s);
        let mutated = Scenario {
            mutation: Some(Mutation::Lifo),
            policy: PolicyKind::Fcfs,
            backfill: BackfillMode::None,
            ..s
        };
        assert_eq!(Scenario::from_text(&mutated.to_text()).unwrap(), mutated);
    }

    #[test]
    fn priority_round_trip_is_identity() {
        for score in ScoreFn::ALL {
            let s = Scenario {
                policy: PolicyKind::Priority(score),
                ..sample()
            };
            let text = s.to_text();
            assert!(text.contains(&format!("policy {}", score.tag())), "{text}");
            assert_eq!(Scenario::from_text(&text).unwrap(), s);
        }
        let mutated = Scenario {
            policy: PolicyKind::Priority(ScoreFn::Wfp),
            mutation: Some(Mutation::InvertedPriority),
            ..sample()
        };
        assert_eq!(Scenario::from_text(&mutated.to_text()).unwrap(), mutated);
    }

    #[test]
    fn inverted_priority_mutation_requires_a_priority_policy() {
        let s = Scenario {
            mutation: Some(Mutation::InvertedPriority),
            ..sample()
        };
        assert!(s.validate().unwrap_err().contains("priority"));
    }

    #[test]
    fn priority_scenarios_build_priority_schedulers() {
        let s = Scenario {
            policy: PolicyKind::Priority(ScoreFn::Wfp3),
            backfill: BackfillMode::Easy,
            ..sample()
        };
        assert_eq!(s.scheduler().name(), "WFP3+EASY-Backfilling");
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = format!("# reproducer\n\n{}\n# trailing\n", sample().to_text());
        assert_eq!(Scenario::from_text(&text).unwrap(), sample());
    }

    #[test]
    fn typed_round_trip_is_identity() {
        let s = typed_sample();
        s.validate().unwrap();
        let text = s.to_text();
        assert!(text.contains("class thin 512 48"));
        assert!(text.contains("job 5 8 50 70 wide 1024"));
        assert!(text.contains("drain 10 16 60 1"));
        assert_eq!(Scenario::from_text(&text).unwrap(), s);
    }

    #[test]
    fn typed_workload_carries_the_layout() {
        let s = typed_sample();
        let w = s.workload();
        let layout = w.layout().expect("typed scenario has a layout");
        assert_eq!(layout.total_nodes(), 64);
        assert_eq!(w.jobs()[1].node_type, NodeType::Wide);
        let plan = s.fault_plan();
        assert_eq!(plan.drains[0].class, ClassId(1));
    }

    #[test]
    fn typed_validation_rejects_class_defects() {
        // Pools must sum to the machine.
        let mut s = typed_sample();
        s.machine_nodes = 65;
        assert!(s.validate().unwrap_err().contains("sum"));
        // Every job must resolve to a class.
        let mut s = typed_sample();
        s.jobs[0].memory_mb = 4096;
        assert!(s.validate().unwrap_err().contains("no eligible"));
        // Drain class indices must exist.
        let mut s = typed_sample();
        s.drains[0].class = 2;
        assert!(s.validate().unwrap_err().contains("out of range"));
        let mut s = sample();
        s.drains[0].class = 1; // homogeneous scenarios only have class 0
        assert!(s.validate().is_err());
    }

    #[test]
    fn preempt_round_trip_and_fault_plan() {
        let s = sample();
        let text = s.to_text();
        assert!(text.contains("preempt 20 0 50"), "{text}");
        assert_eq!(Scenario::from_text(&text).unwrap(), s);
        let plan = s.fault_plan();
        assert_eq!(plan.preempts.len(), 1);
        assert_eq!(plan.preempts[0].id, JobId(0));
        assert_eq!(plan.preempts[0].at, 20);
        assert_eq!(plan.preempts[0].resume_at, 50);
    }

    #[test]
    fn validation_rejects_malformed_preempts() {
        let mut s = sample();
        s.preempts[0].job = 9;
        assert!(s.validate().unwrap_err().contains("out of range"));
        let mut s = sample();
        s.preempts[0].resume_at = s.preempts[0].at;
        assert!(s.validate().unwrap_err().contains("resume_at"));
    }

    #[test]
    fn validation_rejects_malformed_scenarios() {
        let mut s = sample();
        s.cancels[0].job = 9;
        assert!(s.validate().is_err());
        let mut s = sample();
        s.jobs.swap(0, 1);
        assert!(s.validate().is_err());
        let mut s = sample();
        s.drains[0].until = s.drains[0].at;
        assert!(s.validate().is_err());
        let mut s = sample();
        s.jobs[0].nodes = 0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn workload_preserves_index_identity() {
        let s = sample();
        let w = s.workload();
        for (i, j) in s.jobs.iter().enumerate() {
            let job = &w.jobs()[i];
            assert_eq!(job.id, JobId(i as u32));
            assert_eq!(job.submit, j.submit);
            assert_eq!(job.nodes, j.nodes);
        }
    }
}
