//! Counterexample shrinking: delta-debug a violating scenario down to a
//! minimal reproducer before it is written to the replay corpus.
//!
//! The reduction passes, applied to a fixpoint (bounded by an evaluation
//! budget):
//!
//! 1. drop contiguous job chunks (halving chunk sizes, ddmin-style),
//!    remapping cancel indices past the gap;
//! 2. drop individual drains, then individual cancels;
//! 3. round every time down to coarse multiples (floor rounding is
//!    monotone, so the submit-sorted job order survives).
//!
//! A candidate replaces the current scenario only if it is structurally
//! valid *and* still trips [`check_scenario`] — the violation being
//! preserved, not necessarily the same message.

use crate::invariants::check_scenario;
use crate::scenario::Scenario;

/// Default evaluation budget: each evaluation is one full simulation of
/// at most ~80 jobs, so this stays well under a second.
pub const DEFAULT_SHRINK_EVALS: usize = 800;

/// Shrink a violating scenario to a (locally) minimal reproducer.
/// Panics if the input does not violate — shrinking a passing scenario
/// is a harness bug.
pub fn shrink(scenario: &Scenario) -> Scenario {
    shrink_with_budget(scenario, DEFAULT_SHRINK_EVALS)
}

/// [`shrink`] with an explicit evaluation budget.
pub fn shrink_with_budget(scenario: &Scenario, budget: usize) -> Scenario {
    let mut evals = 0usize;
    let mut fails = |s: &Scenario| {
        if evals >= budget {
            return false; // budget exhausted: stop accepting candidates
        }
        evals += 1;
        s.validate().is_ok() && !check_scenario(s).is_empty()
    };
    assert!(
        fails(scenario),
        "shrink called on a scenario with no violation"
    );

    let mut current = scenario.clone();
    loop {
        let mut progressed = false;

        // Pass 1: drop job chunks.
        let mut chunk = (current.jobs.len() / 2).max(1);
        loop {
            let mut i = 0;
            while i < current.jobs.len() && current.jobs.len() > 1 {
                let end = (i + chunk).min(current.jobs.len());
                let candidate = drop_jobs(&current, i, end);
                if fails(&candidate) {
                    current = candidate;
                    progressed = true;
                    // re-test the same position: the next chunk shifted in
                } else {
                    i += chunk;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }

        // Pass 2: drop individual drains and cancels.
        let mut d = 0;
        while d < current.drains.len() {
            let mut candidate = current.clone();
            candidate.drains.remove(d);
            if fails(&candidate) {
                current = candidate;
                progressed = true;
            } else {
                d += 1;
            }
        }
        let mut c = 0;
        while c < current.cancels.len() {
            let mut candidate = current.clone();
            candidate.cancels.remove(c);
            if fails(&candidate) {
                current = candidate;
                progressed = true;
            } else {
                c += 1;
            }
        }
        let mut p = 0;
        while p < current.preempts.len() {
            let mut candidate = current.clone();
            candidate.preempts.remove(p);
            if fails(&candidate) {
                current = candidate;
                progressed = true;
            } else {
                p += 1;
            }
        }

        // Pass 3: coarsen times (floor to multiples; monotone, so the
        // submit sort order is preserved).
        for unit in [10_000u64, 1_000, 100, 10] {
            let candidate = round_times(&current, unit);
            if candidate != current && fails(&candidate) {
                current = candidate;
                progressed = true;
            }
        }

        if !progressed {
            return current;
        }
    }
}

/// Remove jobs `[from, to)`, dropping cancels and preempts aimed at them
/// and shifting later fault indices left.
fn drop_jobs(s: &Scenario, from: usize, to: usize) -> Scenario {
    let mut out = s.clone();
    out.jobs.drain(from..to);
    let removed = to - from;
    out.cancels.retain(|c| !(from..to).contains(&c.job));
    for c in &mut out.cancels {
        if c.job >= to {
            c.job -= removed;
        }
    }
    out.preempts.retain(|p| !(from..to).contains(&p.job));
    for p in &mut out.preempts {
        if p.job >= to {
            p.job -= removed;
        }
    }
    out
}

/// Floor every time field to a multiple of `unit` (keeping durations
/// positive); invalid results (e.g. a drain collapsing to zero width)
/// are rejected by the caller's validity check.
fn round_times(s: &Scenario, unit: u64) -> Scenario {
    let floor = |t: u64| t - t % unit;
    let mut out = s.clone();
    for j in &mut out.jobs {
        j.submit = floor(j.submit);
        j.requested = floor(j.requested).max(1);
        j.runtime = floor(j.runtime).max(1);
    }
    for c in &mut out.cancels {
        c.at = floor(c.at);
    }
    for p in &mut out.preempts {
        p.at = floor(p.at);
        p.resume_at = floor(p.resume_at).max(p.at + 1);
    }
    for d in &mut out.drains {
        d.at = floor(d.at);
        d.until = floor(d.until).max(d.at + 1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::broken_scenario;

    #[test]
    fn shrinks_a_lifo_counterexample_to_a_handful_of_jobs() {
        let full = (0..20)
            .map(|i| broken_scenario(0xD0, i))
            .find(|s| !check_scenario(s).is_empty())
            .expect("some generated LIFO scenario must violate");
        let small = shrink(&full);
        assert!(!check_scenario(&small).is_empty(), "violation lost");
        assert!(
            small.jobs.len() <= 5,
            "still {} jobs after shrinking:\n{}",
            small.jobs.len(),
            small.to_text()
        );
        assert!(small.jobs.len() < full.jobs.len());
    }

    #[test]
    fn dropping_jobs_remaps_cancel_indices() {
        let mut s = broken_scenario(1, 0);
        s.cancels.clear();
        s.cancels.push(crate::scenario::CancelSpec {
            at: s.jobs[5].submit,
            job: 5,
        });
        let out = drop_jobs(&s, 1, 4);
        assert_eq!(out.jobs.len(), s.jobs.len() - 3);
        assert_eq!(out.cancels[0].job, 2);
        let gone = drop_jobs(&s, 4, 8);
        assert!(gone.cancels.is_empty());
    }
}
