//! Regression pin for the blocked-state cache under preemption.
//!
//! The cache's core assumption used to be "arrivals append at the
//! queue tail". A preempted job breaks it: its remainder re-enters
//! `submit` with its *old* id — ahead of jobs that arrived while it
//! ran — so every cached blocked conclusion about those later jobs is
//! stale. The fix forces a full scan on mid-queue re-entry; this test
//! pins cached and uncached runs to identical schedules on the shrunk
//! fuzz reproducer that exposed the bug (job 0 is preempted twice and
//! re-enters ahead of jobs 2 and 3 both times).

use jobsched_algos::spec::PolicyKind;
use jobsched_algos::view::WeightScheme;
use jobsched_algos::{AlgorithmSpec, BackfillMode, ProfileMode};
use jobsched_sim::{simulate_batch_with_faults, simulate_with_faults, FaultPlan, PreemptFault};
use jobsched_workload::{JobBuilder, JobId, Workload};

fn reproducer() -> (Workload, FaultPlan) {
    let spec = [
        // (submit, nodes, requested, runtime)
        (700u64, 2u32, 28_000u64, 21_800u64),
        (1_200, 4, 7_800, 17_200),
        (1_400, 64, 12_300, 12_300),
        (3_400, 16, 26_300, 26_300),
    ];
    let jobs = spec
        .iter()
        .enumerate()
        .map(|(i, &(submit, nodes, requested, runtime))| {
            JobBuilder::new(JobId(i as u32))
                .submit(submit)
                .nodes(nodes)
                .requested(requested)
                .runtime(runtime)
                .build()
        })
        .collect();
    let plan = FaultPlan {
        cancels: vec![],
        drains: vec![],
        preempts: vec![
            PreemptFault {
                id: JobId(0),
                at: 7_100,
                resume_at: 14_400,
            },
            PreemptFault {
                id: JobId(2),
                at: 20_500,
                resume_at: 27_900,
            },
            PreemptFault {
                id: JobId(0),
                at: 25_500,
                resume_at: 28_500,
            },
        ],
    };
    (Workload::new("cache-preempt", 64, jobs), plan)
}

#[test]
fn cached_and_uncached_agree_under_preemptive_reentry() {
    let (workload, plan) = reproducer();
    for backfill in [
        BackfillMode::None,
        BackfillMode::Conservative,
        BackfillMode::Easy,
    ] {
        let spec = AlgorithmSpec::new(PolicyKind::Fcfs, backfill);
        for mode in [ProfileMode::Rebuild, ProfileMode::Incremental] {
            let build = |caching: bool| {
                spec.build(WeightScheme::Unweighted)
                    .with_profile_mode(mode)
                    .with_caching(caching)
            };
            let ctx = format!("{backfill:?} / {mode:?}");

            let cached = simulate_batch_with_faults(&workload, &mut build(true), &plan);
            let plain = simulate_batch_with_faults(&workload, &mut build(false), &plan);
            assert_eq!(cached.schedule, plain.schedule, "batch schedules: {ctx}");
            assert_eq!(cached.faults, plain.faults, "batch fault outcomes: {ctx}");

            let cached = simulate_with_faults(&workload, &mut build(true), &plan);
            let plain = simulate_with_faults(&workload, &mut build(false), &plan);
            assert_eq!(cached.schedule, plain.schedule, "stream schedules: {ctx}");
            assert_eq!(cached.faults, plain.faults, "stream fault outcomes: {ctx}");
        }
    }
}
