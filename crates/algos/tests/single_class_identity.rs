//! The degenerate-layout differential: a machine declared as one
//! explicit node class must place every job bit-identically to the
//! implicit homogeneous machine it has always been.
//!
//! This is the compatibility contract the heterogeneous node-class
//! extension rides on — all 13 paper algorithm/backfill combinations,
//! in both profile modes and both engines, with fault injection in the
//! mix, must not move a single start when `MachineLayout::single(n)` is
//! attached to the workload. Any divergence means multi-class logic
//! leaked into the single-class path.

use jobsched_algos::view::WeightScheme;
use jobsched_algos::{AlgorithmSpec, ProfileMode};
use jobsched_sim::{
    simulate_batch_with_faults, simulate_with_faults, CancelFault, DrainFault, FaultPlan,
};
use jobsched_workload::rng::{derive_seed, Rng, SmallRng};
use jobsched_workload::{Job, JobBuilder, JobId, MachineLayout, Time, Workload};

const MACHINE_NODES: u32 = 64;

/// An adversarial mix: narrow backfill fodder, half-machine blocks, and
/// full-width convoy members, with estimates wrong in both directions.
fn jobs(seed: u64) -> Vec<Job> {
    let mut rng = SmallRng::seed_from_u64(derive_seed(0x51C1_A55E, seed));
    let mut t: Time = 0;
    (0..60u32)
        .map(|i| {
            t += rng.random_range(0u64..500);
            let nodes = match rng.random_range(0u32..8) {
                0 => MACHINE_NODES,
                1..=2 => rng.random_range(MACHINE_NODES / 2..=MACHINE_NODES),
                _ => rng.random_range(1u32..=MACHINE_NODES / 4),
            };
            let requested = rng.random_range(1u64..20_000);
            let runtime = match rng.random_range(0u32..3) {
                0 => requested,
                1 => rng.random_range(1u64..=requested),
                _ => requested + rng.random_range(1u64..8_000),
            };
            JobBuilder::new(JobId(i))
                .submit(t)
                .nodes(nodes)
                .requested(requested)
                .runtime(runtime)
                .build()
        })
        .collect()
}

fn faults() -> FaultPlan {
    FaultPlan {
        cancels: vec![
            CancelFault {
                at: 900,
                id: JobId(7),
            },
            CancelFault {
                at: 4_000,
                id: JobId(23),
            },
        ],
        drains: vec![
            DrainFault::new(1_500, 16, 9_000),
            DrainFault::new(6_000, 8, 14_000),
        ],
        preempts: vec![],
    }
}

#[test]
fn explicit_single_class_layout_changes_no_placement() {
    for seed in 0..4u64 {
        let plain = Workload::new("plain", MACHINE_NODES, jobs(seed));
        let layered = Workload::new("layered", MACHINE_NODES, jobs(seed))
            .with_layout(MachineLayout::single(MACHINE_NODES));

        for spec in AlgorithmSpec::paper_matrix() {
            for mode in [ProfileMode::Rebuild, ProfileMode::Incremental] {
                for caching in [false, true] {
                    let build = || {
                        spec.build(WeightScheme::Unweighted)
                            .with_profile_mode(mode)
                            .with_caching(caching)
                    };
                    let ctx = format!(
                        "{} / {mode:?} / caching={caching} / seed {seed}",
                        spec.name()
                    );

                    let base = simulate_with_faults(&plain, &mut build(), &faults());
                    let single = simulate_with_faults(&layered, &mut build(), &faults());
                    assert_eq!(
                        base.schedule, single.schedule,
                        "stream placements diverged: {ctx}"
                    );
                    assert_eq!(base.faults, single.faults, "fault outcomes diverged: {ctx}");

                    let batch = simulate_batch_with_faults(&layered, &mut build(), &faults());
                    assert_eq!(
                        base.schedule, batch.schedule,
                        "batch placements diverged: {ctx}"
                    );
                }
            }
        }
    }
}
