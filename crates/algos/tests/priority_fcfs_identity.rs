//! The FCFS pin: `PriorityScheduler` with the `ScoreFn::Fcfs` scoring
//! rule must be bit-identical to the legacy FCFS `ListScheduler` —
//! every placement, every fault outcome — across every backfill mode,
//! both profile modes, both engines (batch loop and streaming
//! pipeline), homogeneous and heterogeneous layouts, with and without
//! fault injection.
//!
//! This is the compatibility contract the priority family rides on:
//! score `-wait` with ties broken by ascending id reproduces the
//! submission order exactly, so feeding it through the shared selection
//! machinery must reproduce the legacy scheduler's decisions bit for
//! bit. Any divergence means the re-ranking path changed selection
//! semantics.

use jobsched_algos::spec::PolicyKind;
use jobsched_algos::view::WeightScheme;
use jobsched_algos::{AlgorithmSpec, BackfillMode, PriorityScheduler, ProfileMode, ScoreFn};
use jobsched_sim::{
    simulate_batch_with_faults, simulate_with_faults, CancelFault, DrainFault, FaultPlan,
};
use jobsched_workload::rng::{derive_seed, Rng, SmallRng};
use jobsched_workload::{
    Job, JobBuilder, JobId, MachineLayout, NodeClassSpec, NodeType, Time, Workload,
};

const MACHINE_NODES: u32 = 64;

/// An adversarial mix: narrow backfill fodder, half-machine blocks, and
/// full-width convoy members, with estimates wrong in both directions
/// and same-instant submission bursts (the tie-break stressor).
fn jobs(seed: u64) -> Vec<Job> {
    let mut rng = SmallRng::seed_from_u64(derive_seed(0xF1D0_F1D0, seed));
    let mut t: Time = 0;
    (0..60u32)
        .map(|i| {
            if rng.random_range(0u32..4) != 0 {
                t += rng.random_range(0u64..500);
            }
            let nodes = match rng.random_range(0u32..8) {
                0 => MACHINE_NODES,
                1..=2 => rng.random_range(MACHINE_NODES / 2..=MACHINE_NODES),
                _ => rng.random_range(1u32..=MACHINE_NODES / 4),
            };
            let requested = rng.random_range(1u64..20_000);
            let runtime = match rng.random_range(0u32..3) {
                0 => requested,
                1 => rng.random_range(1u64..=requested),
                _ => requested + rng.random_range(1u64..8_000),
            };
            JobBuilder::new(JobId(i))
                .submit(t)
                .nodes(nodes)
                .requested(requested)
                .runtime(runtime)
                .build()
        })
        .collect()
}

/// A 48-thin + 16-wide partition with the job stream retyped into both
/// pools (widths clamped to the pool) — the layout where per-class
/// queue partitioning could diverge from the legacy path.
fn hetero(seed: u64) -> Workload {
    let layout = MachineLayout::new(vec![
        NodeClassSpec {
            node_type: NodeType::Thin,
            memory_mb: 512,
            count: 48,
        },
        NodeClassSpec {
            node_type: NodeType::Wide,
            memory_mb: 2048,
            count: 16,
        },
    ]);
    let mut rng = SmallRng::seed_from_u64(derive_seed(0xF1D0_7E70, seed));
    let jobs = jobs(seed)
        .into_iter()
        .map(|j| {
            let (node_type, memory_mb, cap) = match rng.random_range(0u32..4) {
                0 => (NodeType::Wide, 1024, 16),
                1 => (NodeType::Thin, 2048, 16), // escalates into the wide pool
                _ => (NodeType::Thin, 256, 48),
            };
            JobBuilder::new(j.id)
                .submit(j.submit)
                .nodes(j.nodes.min(cap).max(1))
                .requested(j.requested_time)
                .runtime(j.runtime)
                .node_type(node_type)
                .memory_mb(memory_mb)
                .build()
        })
        .collect();
    Workload::new("hetero", MACHINE_NODES, jobs).with_layout(layout)
}

fn faults() -> FaultPlan {
    FaultPlan {
        cancels: vec![
            CancelFault {
                at: 900,
                id: JobId(7),
            },
            CancelFault {
                at: 4_000,
                id: JobId(23),
            },
        ],
        drains: vec![
            DrainFault::new(1_500, 16, 9_000),
            DrainFault::new(6_000, 8, 14_000),
        ],
        preempts: vec![],
    }
}

fn assert_identical(workload: &Workload, plan: &FaultPlan, what: &str) {
    for backfill in [
        BackfillMode::None,
        BackfillMode::Conservative,
        BackfillMode::Easy,
    ] {
        let legacy_spec = AlgorithmSpec::new(PolicyKind::Fcfs, backfill);
        for mode in [ProfileMode::Rebuild, ProfileMode::Incremental] {
            for caching in [false, true] {
                let legacy = || {
                    legacy_spec
                        .build(WeightScheme::Unweighted)
                        .with_profile_mode(mode)
                        .with_caching(caching)
                };
                let priority =
                    || PriorityScheduler::new(ScoreFn::Fcfs, backfill).with_profile_mode(mode);
                let ctx = format!("{what} / {backfill:?} / {mode:?} / legacy caching={caching}");

                let l = simulate_with_faults(workload, &mut legacy(), plan);
                let p = simulate_with_faults(workload, &mut priority(), plan);
                assert_eq!(l.schedule, p.schedule, "stream placements diverged: {ctx}");
                assert_eq!(l.faults, p.faults, "fault outcomes diverged: {ctx}");

                let lb = simulate_batch_with_faults(workload, &mut legacy(), plan);
                let pb = simulate_batch_with_faults(workload, &mut priority(), plan);
                assert_eq!(lb.schedule, pb.schedule, "batch placements diverged: {ctx}");
                assert_eq!(
                    l.schedule, pb.schedule,
                    "batch vs stream placements diverged: {ctx}"
                );
            }
        }
    }
}

#[test]
fn priority_fcfs_matches_legacy_fcfs_homogeneous() {
    for seed in 0..4u64 {
        let w = Workload::new("plain", MACHINE_NODES, jobs(seed));
        assert_identical(&w, &FaultPlan::default(), &format!("plain seed {seed}"));
        assert_identical(&w, &faults(), &format!("plain+faults seed {seed}"));
    }
}

#[test]
fn priority_fcfs_matches_legacy_fcfs_heterogeneous() {
    for seed in 0..4u64 {
        let w = hetero(seed);
        assert_identical(&w, &FaultPlan::default(), &format!("hetero seed {seed}"));
        assert_identical(&w, &faults(), &format!("hetero+faults seed {seed}"));
    }
}
