//! Property tests for the priority scoring functions.
//!
//! Three families of properties, swept with the hand-rolled xoshiro
//! generator (tier-1: no external proptest dependency):
//!
//! * **Monotonicity in the governing variable** — each scoring rule
//!   promises a direction: more wait never *lowers* the priority of a
//!   wait-compensating rule (FCFS, WFP, WFP³, UNICEF, F1, F2), a longer
//!   estimate never raises SJF's priority, more width never raises
//!   Smallest-First's, and the mirrored rules (LJF, Largest-First) run
//!   the other way. Scores use "smaller = earlier", so the assertions
//!   are on score order.
//! * **Tie-break determinism** — ranking is a function of the job *set*,
//!   not the iteration order: any permutation of the queue ranks
//!   identically, and exact score ties order by ascending id.
//! * **No NaN/overflow at the extremes** — zero wait, maximal wait,
//!   clamped estimates, one-node and `u32::MAX`-width jobs all score
//!   finite, for every rule.

use jobsched_algos::priority::rank;
use jobsched_algos::ScoreFn;
use jobsched_sim::JobRequest;
use jobsched_workload::rng::{derive_seed, Rng, SmallRng};
use jobsched_workload::{ClassId, JobId, Time};

fn req(id: u32, submit: Time, nodes: u32, requested: Time) -> JobRequest {
    JobRequest {
        id: JobId(id),
        submit,
        nodes,
        class: ClassId(0),
        requested_time: requested,
        user: 0,
    }
}

/// The variable a scoring rule's priority responds to, and the
/// direction: `score(bumped)` must compare to `score(base)` this way.
#[derive(Clone, Copy, Debug)]
enum Governs {
    /// Bumping wait must not increase the score (priority never drops).
    WaitLowers,
    /// Bumping the estimate must not decrease the score.
    EstimateRaises,
    /// Bumping the estimate must not increase the score.
    EstimateLowers,
    /// Bumping the width must not decrease the score.
    WidthRaises,
    /// Bumping the width must not increase the score.
    WidthLowers,
}

fn governing(score: ScoreFn) -> Governs {
    match score {
        ScoreFn::Fcfs => Governs::WaitLowers,
        ScoreFn::Sjf => Governs::EstimateRaises,
        ScoreFn::Ljf => Governs::EstimateLowers,
        ScoreFn::SmallestFirst => Governs::WidthRaises,
        ScoreFn::LargestFirst => Governs::WidthLowers,
        ScoreFn::Wfp => Governs::WaitLowers,
        ScoreFn::Wfp3 => Governs::WaitLowers,
        ScoreFn::Unicef => Governs::WaitLowers,
        ScoreFn::F1 => Governs::WaitLowers,
        ScoreFn::F2 => Governs::WaitLowers,
    }
}

#[test]
fn every_rule_is_monotone_in_its_governing_variable() {
    let mut rng = SmallRng::seed_from_u64(derive_seed(0x9090_A110, 0));
    for score in ScoreFn::ALL {
        for _ in 0..2_000 {
            let wait = rng.random_range(0u64..2_000_000);
            let est = rng.random_range(1u64..2_000_000);
            let width = rng.random_range(1u32..=4_096);
            let bump_t = rng.random_range(1u64..1_000_000);
            let bump_w = rng.random_range(1u32..=4_096);
            let base = score.score(wait, est, width);
            let ctx = format!("{score:?} at wait={wait} est={est} width={width}");
            match governing(score) {
                Governs::WaitLowers => {
                    let bumped = score.score(wait + bump_t, est, width);
                    assert!(bumped <= base, "{ctx}: +{bump_t} wait raised the score");
                }
                Governs::EstimateRaises => {
                    let bumped = score.score(wait, est + bump_t, width);
                    assert!(
                        bumped >= base,
                        "{ctx}: +{bump_t} estimate lowered the score"
                    );
                }
                Governs::EstimateLowers => {
                    let bumped = score.score(wait, est + bump_t, width);
                    assert!(bumped <= base, "{ctx}: +{bump_t} estimate raised the score");
                }
                Governs::WidthRaises => {
                    let bumped = score.score(wait, est, width.saturating_add(bump_w));
                    assert!(bumped >= base, "{ctx}: +{bump_w} width lowered the score");
                }
                Governs::WidthLowers => {
                    let bumped = score.score(wait, est, width.saturating_add(bump_w));
                    assert!(bumped <= base, "{ctx}: +{bump_w} width raised the score");
                }
            }
        }
    }
}

#[test]
fn ranking_is_invariant_under_queue_permutation() {
    let mut rng = SmallRng::seed_from_u64(derive_seed(0x9090_A110, 1));
    for score in ScoreFn::ALL {
        for round in 0..200 {
            let n = rng.random_range(2usize..30);
            // Duplicate-heavy shapes: bursty submits and a narrow value
            // range force score ties, so the id tie-break carries the
            // determinism.
            let jobs: Vec<JobRequest> = (0..n as u32)
                .map(|id| {
                    req(
                        id,
                        rng.random_range(0u64..4) * 100,
                        [1u32, 2, 2, 8][rng.random_range(0usize..4)],
                        [50u64, 50, 600][rng.random_range(0usize..3)],
                    )
                })
                .collect();
            let now = 500;
            let baseline = rank(score, now, &jobs, false);

            // Fisher–Yates over the queue order.
            let mut shuffled: Vec<&JobRequest> = jobs.iter().collect();
            for i in (1..shuffled.len()).rev() {
                let j = rng.random_range(0usize..=i);
                shuffled.swap(i, j);
            }
            let permuted = rank(score, now, shuffled.iter().copied(), false);
            assert_eq!(
                baseline, permuted,
                "{score:?} round {round}: permuted queue ranked differently"
            );
        }
    }
}

#[test]
fn exact_score_ties_order_by_ascending_id() {
    // Clones of one job under every rule: the ranking must be the id
    // order, whatever order the queue presents them in.
    let jobs: Vec<JobRequest> = [9u32, 3, 7, 1]
        .iter()
        .map(|&id| req(id, 40, 4, 300))
        .collect();
    for score in ScoreFn::ALL {
        assert_eq!(
            rank(score, 100, &jobs, false),
            vec![JobId(1), JobId(3), JobId(7), JobId(9)],
            "{score:?}"
        );
    }
}

#[test]
fn fcfs_rank_is_the_submission_order() {
    let mut rng = SmallRng::seed_from_u64(derive_seed(0x9090_A110, 2));
    for _ in 0..200 {
        let n = rng.random_range(2usize..40);
        // Ids ascend with submit time — the repo-wide driver convention
        // the tie-break rule leans on.
        let mut submit = 0u64;
        let jobs: Vec<JobRequest> = (0..n as u32)
            .map(|id| {
                if rng.random_range(0u32..3) == 0 {
                    submit += rng.random_range(1u64..500);
                }
                req(id, submit, rng.random_range(1u32..64), 100)
            })
            .collect();
        let now = submit + rng.random_range(0u64..1_000);
        let expect: Vec<JobId> = jobs.iter().map(|j| j.id).collect();
        assert_eq!(rank(ScoreFn::Fcfs, now, &jobs, false), expect);
    }
}

#[test]
fn extremes_score_finite_for_every_rule() {
    let waits = [0u64, 1, 10, u64::MAX / 2, u64::MAX];
    let ests = [0u64, 1, 10, u64::MAX / 2, u64::MAX]; // 0 exercises the ≥1 clamp
    let widths = [1u32, 2, 4_096, u32::MAX / 2, u32::MAX];
    for score in ScoreFn::ALL {
        for &wait in &waits {
            for &est in &ests {
                for &width in &widths {
                    let s = score.score(wait, est, width);
                    assert!(
                        s.is_finite(),
                        "{score:?}({wait}, {est}, {width}) = {s} is not finite"
                    );
                }
            }
        }
    }
}

#[test]
fn zero_wait_and_max_width_jobs_rank_without_panicking() {
    // The submission-instant decision round: every wait is zero, widths
    // span the extremes — ranking must still be total and id-stable
    // where scores tie.
    let jobs = vec![
        req(0, 100, u32::MAX, 1),
        req(1, 100, 1, u64::MAX),
        req(2, 100, u32::MAX, u64::MAX),
        req(3, 100, 1, 1),
    ];
    for score in ScoreFn::ALL {
        let order = rank(score, 100, &jobs, false);
        assert_eq!(order.len(), jobs.len(), "{score:?} dropped a job");
        let mut sorted = order.clone();
        sorted.sort();
        assert_eq!(
            sorted,
            vec![JobId(0), JobId(1), JobId(2), JobId(3)],
            "{score:?} duplicated or lost an id"
        );
    }
}
