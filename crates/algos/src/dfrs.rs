//! Time-shared schedulers: a DFRS-style quantum rotation policy and a
//! moldable-choice FCFS, both driving the segment engine
//! ([`jobsched_sim::simulate_time_shared`]).
//!
//! The paper's evaluation is rigid and space-shared ("the machine does
//! not allow time sharing", Example 5), but PAPERS.md names the two
//! extensions this module adapts:
//!
//! * **DFRS** (Casanova, Stillwell & Vivien, *Dynamic Fractional
//!   Resource Scheduling vs. Batch Scheduling*): jobs receive dynamic
//!   fractional shares of the machine instead of exclusive partitions.
//!   Our machine model allocates whole nodes, so [`DfrsScheduler`]
//!   realises the fractional share in *time*: the FCFS queue is served
//!   greedily from a rotating head, and every `slice` seconds the
//!   running set is preempted and requeued behind the waiters — each
//!   backlogged job receives a recurring quantum of the machine rather
//!   than waiting for an exclusive run-to-completion slot. With an
//!   empty backlog the running set keeps the machine (no churn), which
//!   is exactly DFRS's "degenerate to space sharing when unloaded".
//! * **Moldable jobs** (Dutot & Mounié): a job ships several
//!   `(width, limit)` execution alternatives and the *scheduler* picks
//!   one at start time. [`MoldableScheduler`] keeps the FCFS order and
//!   for the queue head picks the fitting alternative with the earliest
//!   promised completion (ties to the narrower width, leaving room for
//!   the next job); the head blocks only when *no* alternative fits.
//!
//! Both are pure [`TimeSharedScheduler`]s: all machine state, work
//! accounting and segment bookkeeping live in the engine.

use jobsched_sim::tshare::{Action, TimeSharedScheduler, TsJobView};
use jobsched_sim::Machine;
use jobsched_workload::{JobId, Time};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Default rotation quantum (seconds). Matches the gang scheduler's
/// default slice so DFRS-vs-gang comparisons share a time base.
pub const DFRS_DEFAULT_SLICE: Time = 600;

/// DFRS-style time-shared scheduler: FCFS greedy packing from a
/// rotating head with a preempt-all rotation every `slice` seconds
/// while jobs are backlogged.
#[derive(Debug)]
pub struct DfrsScheduler {
    slice: Time,
    /// Jobs not currently running, in rotation order (arrivals and
    /// preempted jobs join the tail).
    queue: VecDeque<JobId>,
    widths: BTreeMap<JobId, u32>,
    started: BTreeSet<JobId>,
    running: Vec<JobId>,
    /// End of the current quantum; meaningful only while jobs run.
    slice_end: Time,
}

impl DfrsScheduler {
    /// New scheduler with the given rotation quantum (clamped to ≥ 1).
    pub fn new(slice: Time) -> Self {
        DfrsScheduler {
            slice: slice.max(1),
            queue: VecDeque::new(),
            widths: BTreeMap::new(),
            started: BTreeSet::new(),
            running: Vec::new(),
            slice_end: 0,
        }
    }
}

impl Default for DfrsScheduler {
    fn default() -> Self {
        DfrsScheduler::new(DFRS_DEFAULT_SLICE)
    }
}

impl TimeSharedScheduler for DfrsScheduler {
    fn name(&self) -> String {
        format!("DFRS-TS(slice={})", self.slice)
    }

    fn submit(&mut self, job: &TsJobView, _now: Time) {
        self.widths.insert(job.id, job.choices[0].0);
        self.queue.push_back(job.id);
    }

    fn job_finished(&mut self, id: JobId, _now: Time) {
        self.running.retain(|&r| r != id);
    }

    fn decide(&mut self, now: Time, machine: &Machine) -> Vec<Action> {
        // Quantum expiry with a backlog: preempt the whole running set
        // and requeue it behind the waiters. The freed nodes are packed
        // in the engine's next decision round of the same instant.
        if now >= self.slice_end && !self.running.is_empty() && !self.queue.is_empty() {
            let out = self
                .running
                .drain(..)
                .map(|id| {
                    self.queue.push_back(id);
                    Action::Preempt { id }
                })
                .collect();
            self.slice_end = now + self.slice;
            return out;
        }

        // Greedy head-blocking packing in rotation order.
        let mut out = Vec::new();
        let mut free = machine.free_nodes();
        let was_idle = self.running.is_empty();
        while let Some(&head) = self.queue.front() {
            let width = self.widths[&head];
            if width > free {
                break;
            }
            free -= width;
            self.queue.pop_front();
            out.push(if self.started.insert(head) {
                Action::Start {
                    id: head,
                    choice: 0,
                }
            } else {
                Action::Resume { id: head }
            });
            self.running.push(head);
        }
        if was_idle && !out.is_empty() {
            // A fresh quantum begins whenever the machine goes from idle
            // to busy; mid-slice joiners share the remainder.
            self.slice_end = now + self.slice;
        }
        out
    }

    fn queue_len(&self) -> usize {
        self.queue.len()
    }

    fn next_wakeup(&self, now: Time) -> Option<Time> {
        // A rotation is only worth waking for while somebody waits.
        (!self.running.is_empty() && !self.queue.is_empty() && self.slice_end > now)
            .then_some(self.slice_end)
    }
}

/// Moldable FCFS: rigid run-to-completion execution, but the width is
/// chosen from the job's moldable alternatives at start time.
#[derive(Debug, Default)]
pub struct MoldableScheduler {
    queue: VecDeque<JobId>,
    /// `(width, limit)` alternatives per waiting job.
    choices: BTreeMap<JobId, Vec<(u32, Time)>>,
}

impl MoldableScheduler {
    /// New empty scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TimeSharedScheduler for MoldableScheduler {
    fn name(&self) -> String {
        "Moldable-FCFS".into()
    }

    fn submit(&mut self, job: &TsJobView, _now: Time) {
        self.choices.insert(job.id, job.choices.clone());
        self.queue.push_back(job.id);
    }

    fn decide(&mut self, _now: Time, machine: &Machine) -> Vec<Action> {
        let mut out = Vec::new();
        let mut free = machine.free_nodes();
        while let Some(&head) = self.queue.front() {
            let alternatives = &self.choices[&head];
            // Earliest promised completion among the alternatives that
            // fit right now; ties favour the narrower width. The head
            // blocks only when no alternative fits.
            let pick = alternatives
                .iter()
                .enumerate()
                .filter(|(_, &(nodes, _))| nodes <= free)
                .min_by_key(|(_, &(nodes, limit))| (limit, nodes));
            let Some((choice, &(nodes, _))) = pick else {
                break;
            };
            free -= nodes;
            self.queue.pop_front();
            self.choices.remove(&head);
            out.push(Action::Start { id: head, choice });
        }
        out
    }

    fn queue_len(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jobsched_sim::simulate_time_shared;
    use jobsched_workload::{synthesize_moldable, JobBuilder, Workload};

    fn job(id: u32, submit: Time, nodes: u32, runtime: Time) -> jobsched_workload::Job {
        JobBuilder::new(JobId(id))
            .submit(submit)
            .nodes(nodes)
            .requested(runtime)
            .runtime(runtime)
            .build()
    }

    #[test]
    fn dfrs_time_shares_a_backlogged_machine() {
        // Rigid FCFS serialises two full-machine jobs (second waits
        // 10_000 s); DFRS alternates 600 s quanta so the short job is
        // not stuck behind the long one.
        let w = Workload::new("d", 10, vec![job(0, 0, 10, 10_000), job(1, 1, 10, 600)]);
        let out = simulate_time_shared(&w, &mut DfrsScheduler::default());
        assert!(out.schedule.validate(&w).is_empty());
        let short = out.schedule.placement(JobId(1)).unwrap();
        assert!(
            short.completion < 3_000,
            "short job should finish within a few quanta, got {}",
            short.completion
        );
        // Both charged exactly their runtime across their spans.
        assert_eq!(out.schedule.charged_time(JobId(0)), Some(10_000));
        assert_eq!(out.schedule.charged_time(JobId(1)), Some(600));
        // The long job really was preempted (multi-segment union).
        assert!(out.schedule.segments(JobId(0)).unwrap().len() > 1);
    }

    #[test]
    fn dfrs_without_backlog_never_preempts() {
        // Both fit together: no rotation, bit-identical to rigid FCFS.
        let w = Workload::new("d", 10, vec![job(0, 0, 4, 5_000), job(1, 0, 6, 5_000)]);
        let out = simulate_time_shared(&w, &mut DfrsScheduler::default());
        assert_eq!(out.schedule.segments(JobId(0)), None);
        assert_eq!(out.schedule.segments(JobId(1)), None);
        assert_eq!(out.schedule.placement(JobId(0)).unwrap().completion, 5_000);
    }

    #[test]
    fn dfrs_rotation_is_fcfs_fair() {
        // Three full-machine jobs: quanta rotate 0, 1, 2, 0, 1, 2, ...
        // so every job's first start is within the first three slices.
        let w = Workload::new(
            "d",
            10,
            vec![
                job(0, 0, 10, 2_000),
                job(1, 0, 10, 2_000),
                job(2, 0, 10, 2_000),
            ],
        );
        let out = simulate_time_shared(&w, &mut DfrsScheduler::new(500));
        for i in 0..3u32 {
            let p = out.schedule.placement(JobId(i)).unwrap();
            assert!(
                p.start <= 1_000,
                "job {i} first quantum at {} — rotation skipped it",
                p.start
            );
        }
        assert!(out.schedule.validate(&w).is_empty());
    }

    #[test]
    fn moldable_narrows_the_head_to_fit_a_hole() {
        // 6 nodes busy until t=1000; the 8-wide head folds to its
        // 4-wide alternative and starts immediately instead of waiting.
        let mut w = Workload::new("m", 10, vec![job(0, 0, 6, 1_000), job(1, 0, 8, 400)]);
        // Only the second job is moldable (work-conserving 4-wide fold).
        w.set_moldable(vec![
            vec![],
            vec![jobsched_workload::MoldableChoice {
                nodes: 4,
                requested_time: 800,
                runtime: 800,
            }],
        ]);
        let out = simulate_time_shared(&w, &mut MoldableScheduler::new());
        let p = out.schedule.placement(JobId(1)).unwrap();
        assert_eq!(p.start, 0, "moldable head should fold into the hole");
        // 8×400 node-seconds at width 4 → 800 s.
        assert_eq!(p.completion, 800);
        assert!(out.schedule.validate(&w).is_empty());
    }

    #[test]
    fn moldable_on_a_rigid_workload_is_plain_fcfs() {
        let w = Workload::new("m", 10, vec![job(0, 0, 6, 100), job(1, 0, 6, 100)]);
        let out = simulate_time_shared(&w, &mut MoldableScheduler::new());
        assert_eq!(out.schedule.placement(JobId(0)).unwrap().start, 0);
        assert_eq!(out.schedule.placement(JobId(1)).unwrap().start, 100);
    }

    #[test]
    fn moldable_prefers_the_faster_promise_not_just_any_fit() {
        // Whole machine free: the rigid shape promises the earliest
        // completion, so no folding happens without pressure.
        let mut w = Workload::new("m", 10, vec![job(0, 0, 8, 400)]);
        let table = synthesize_moldable(&w);
        w.set_moldable(table);
        let out = simulate_time_shared(&w, &mut MoldableScheduler::new());
        let p = out.schedule.placement(JobId(0)).unwrap();
        assert_eq!((p.start, p.completion), (0, 400));
        assert_eq!(out.schedule.segments(JobId(0)), None, "rigid shape kept");
    }
}
