//! Algorithm specifications and the paper's evaluation matrix.
//!
//! Tables 3–6 evaluate five row algorithms against three column variants
//! (plain list scheduler, conservative backfilling, EASY backfilling),
//! with Garey & Graham appearing only in the list column because
//! "application of backfilling will be of no benefit for this method"
//! (§5.3). [`AlgorithmSpec::paper_matrix`] enumerates exactly those 13
//! combinations; [`AlgorithmSpec::reference`] is the FCFS + EASY baseline
//! the paper normalises against (§7: "the administrator selects the
//! simulation of FCFS with EASY backfilling to be a reference value as
//! this algorithm is used by the CTC").

use crate::backfill::BackfillMode;
use crate::dfrs::{DfrsScheduler, MoldableScheduler};
use crate::order::OrderPolicy;
use crate::priority::{PriorityScheduler, ScoreFn};
use crate::psrs::PsrsParams;
use crate::scheduler::ListScheduler;
use crate::smart::SmartVariant;
use crate::view::WeightScheme;
use jobsched_sim::{Scheduler, TimeSharedScheduler};

/// Row algorithm of the evaluation tables: the paper's five rows plus
/// the priority family of the scheduler atlas.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// First-Come-First-Serve (§5.1).
    Fcfs,
    /// Preemptive Smith-Ratio Scheduling, adapted (§5.5).
    Psrs,
    /// SMART, First Fit Increasing Area (§5.4).
    SmartFfia,
    /// SMART, Next Fit Increasing Width-to-Weight (§5.4).
    SmartNfiw,
    /// Classical list scheduling (§5.3).
    GareyGraham,
    /// A [`PriorityScheduler`] row keyed by its scoring function.
    Priority(ScoreFn),
    /// DFRS-style time-shared rotation (extension; segment engine).
    Dfrs,
    /// Moldable-choice FCFS (extension; segment engine).
    Moldable,
}

impl PolicyKind {
    /// The paper's rows in table order (the priority family extends the
    /// atlas, not the paper's tables — see [`PolicyKind::atlas`]).
    pub const ALL: [PolicyKind; 5] = [
        PolicyKind::Fcfs,
        PolicyKind::Psrs,
        PolicyKind::SmartFfia,
        PolicyKind::SmartNfiw,
        PolicyKind::GareyGraham,
    ];

    /// The priority-family rows, one per scoring rule.
    pub const PRIORITY: [PolicyKind; 10] = [
        PolicyKind::Priority(ScoreFn::Fcfs),
        PolicyKind::Priority(ScoreFn::Sjf),
        PolicyKind::Priority(ScoreFn::Ljf),
        PolicyKind::Priority(ScoreFn::SmallestFirst),
        PolicyKind::Priority(ScoreFn::LargestFirst),
        PolicyKind::Priority(ScoreFn::Wfp),
        PolicyKind::Priority(ScoreFn::Wfp3),
        PolicyKind::Priority(ScoreFn::Unicef),
        PolicyKind::Priority(ScoreFn::F1),
        PolicyKind::Priority(ScoreFn::F2),
    ];

    /// The time-shared extension rows: not part of the paper matrix or
    /// the atlas (whose 43 rows are pinned), but runnable through
    /// [`AlgorithmSpec::build_time_shared`] and `core::run_cell` for
    /// preemption/moldability comparisons against the rigid baselines.
    pub const TIME_SHARED: [PolicyKind; 2] = [PolicyKind::Dfrs, PolicyKind::Moldable];

    /// Every row of the scheduler atlas: paper rows then priority rows.
    pub fn atlas() -> Vec<PolicyKind> {
        let mut out = PolicyKind::ALL.to_vec();
        out.extend(PolicyKind::PRIORITY);
        out
    }

    /// Whether this row runs on the time-shared segment engine instead
    /// of the rigid engines.
    pub fn time_shared(&self) -> bool {
        matches!(self, PolicyKind::Dfrs | PolicyKind::Moldable)
    }

    /// Row label as printed in the paper (priority rows use the scoring
    /// function's label).
    pub fn label(&self) -> &'static str {
        match self {
            PolicyKind::Fcfs => "FCFS",
            PolicyKind::Psrs => "PSRS",
            PolicyKind::SmartFfia => "SMART-FFIA",
            PolicyKind::SmartNfiw => "SMART-NFIW",
            PolicyKind::GareyGraham => "Garey&Graham",
            PolicyKind::Priority(s) => s.label(),
            PolicyKind::Dfrs => "DFRS",
            PolicyKind::Moldable => "Moldable",
        }
    }

    /// Materialise the ordering policy under a weight scheme.
    ///
    /// # Panics
    ///
    /// Priority rows are not `OrderPolicy` instances (their order is a
    /// per-decision function of the clock); build them through
    /// [`AlgorithmSpec::build_dyn`] instead.
    pub fn policy(&self, scheme: WeightScheme) -> OrderPolicy {
        match self {
            PolicyKind::Fcfs => OrderPolicy::Fcfs,
            PolicyKind::GareyGraham => OrderPolicy::GareyGraham,
            PolicyKind::SmartFfia => OrderPolicy::smart(SmartVariant::Ffia, scheme),
            PolicyKind::SmartNfiw => OrderPolicy::smart(SmartVariant::Nfiw, scheme),
            PolicyKind::Psrs => OrderPolicy::Psrs {
                params: PsrsParams::default(),
                scheme,
            },
            PolicyKind::Priority(s) => panic!(
                "priority policy {} has no OrderPolicy; use AlgorithmSpec::build_dyn",
                s.label()
            ),
            PolicyKind::Dfrs | PolicyKind::Moldable => panic!(
                "time-shared policy {} has no OrderPolicy; use AlgorithmSpec::build_time_shared",
                self.label()
            ),
        }
    }
}

/// One cell of the evaluation matrix: a row algorithm and a backfill
/// column.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct AlgorithmSpec {
    /// Row algorithm.
    pub kind: PolicyKind,
    /// Column variant.
    pub backfill: BackfillMode,
}

impl AlgorithmSpec {
    /// New spec.
    pub fn new(kind: PolicyKind, backfill: BackfillMode) -> Self {
        AlgorithmSpec { kind, backfill }
    }

    /// The paper's FCFS + EASY reference configuration.
    pub fn reference() -> Self {
        AlgorithmSpec::new(PolicyKind::Fcfs, BackfillMode::Easy)
    }

    /// The 13 combinations of Tables 3–6: 4 algorithms × 3 columns, plus
    /// Garey & Graham in the list column only.
    pub fn paper_matrix() -> Vec<AlgorithmSpec> {
        let mut out = Vec::with_capacity(13);
        for kind in [
            PolicyKind::Fcfs,
            PolicyKind::Psrs,
            PolicyKind::SmartFfia,
            PolicyKind::SmartNfiw,
        ] {
            for backfill in [
                BackfillMode::None,
                BackfillMode::Conservative,
                BackfillMode::Easy,
            ] {
                out.push(AlgorithmSpec::new(kind, backfill));
            }
        }
        out.push(AlgorithmSpec::new(
            PolicyKind::GareyGraham,
            BackfillMode::None,
        ));
        out
    }

    /// The scheduler-atlas matrix: the 13 paper combos plus every
    /// priority scoring rule × all three backfill columns (43 cells).
    pub fn atlas_matrix() -> Vec<AlgorithmSpec> {
        let mut out = AlgorithmSpec::paper_matrix();
        for kind in PolicyKind::PRIORITY {
            for backfill in [
                BackfillMode::None,
                BackfillMode::Conservative,
                BackfillMode::Easy,
            ] {
                out.push(AlgorithmSpec::new(kind, backfill));
            }
        }
        out
    }

    /// Build a runnable scheduler under the given weight scheme.
    ///
    /// # Panics
    ///
    /// Priority rows are not [`ListScheduler`]s; build them through
    /// [`AlgorithmSpec::build_dyn`].
    pub fn build(&self, scheme: WeightScheme) -> ListScheduler {
        ListScheduler::new(self.kind.policy(scheme), self.backfill)
    }

    /// Build any atlas row as a boxed scheduler. `caching` toggles the
    /// `ListScheduler` blocked-state cache; the priority family has no
    /// such cache (its order is wait-dependent), so the flag is a no-op
    /// there.
    pub fn build_dyn(&self, scheme: WeightScheme, caching: bool) -> Box<dyn Scheduler> {
        match self.kind {
            PolicyKind::Priority(score) => Box::new(PriorityScheduler::new(score, self.backfill)),
            PolicyKind::Dfrs | PolicyKind::Moldable => panic!(
                "{} is not a rigid Scheduler; use AlgorithmSpec::build_time_shared",
                self.kind.label()
            ),
            _ => Box::new(self.build(scheme).with_caching(caching)),
        }
    }

    /// Build a time-shared row for the segment engine
    /// ([`jobsched_sim::simulate_time_shared`]); `None` for the rigid
    /// rows. The backfill column is ignored — preemption subsumes it
    /// (freed capacity is repacked every quantum), so time-shared specs
    /// conventionally carry [`BackfillMode::None`].
    pub fn build_time_shared(&self) -> Option<Box<dyn TimeSharedScheduler + Send>> {
        match self.kind {
            PolicyKind::Dfrs => Some(Box::new(DfrsScheduler::default())),
            PolicyKind::Moldable => Some(Box::new(MoldableScheduler::new())),
            _ => None,
        }
    }

    /// Full display name ("PSRS+EASY-Backfilling").
    pub fn name(&self) -> String {
        format!("{}+{}", self.kind.label(), self.backfill.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_has_thirteen_cells() {
        let m = AlgorithmSpec::paper_matrix();
        assert_eq!(m.len(), 13);
        let gg: Vec<_> = m
            .iter()
            .filter(|s| s.kind == PolicyKind::GareyGraham)
            .collect();
        assert_eq!(gg.len(), 1);
        assert_eq!(gg[0].backfill, BackfillMode::None);
    }

    #[test]
    fn matrix_is_unique() {
        let m = AlgorithmSpec::paper_matrix();
        let set: std::collections::HashSet<_> = m.iter().collect();
        assert_eq!(set.len(), m.len());
    }

    #[test]
    fn reference_is_fcfs_easy() {
        let r = AlgorithmSpec::reference();
        assert_eq!(r.name(), "FCFS+EASY-Backfilling");
        assert!(AlgorithmSpec::paper_matrix().contains(&r));
    }

    #[test]
    fn build_respects_scheme() {
        let s = AlgorithmSpec::new(PolicyKind::SmartFfia, BackfillMode::Easy);
        let sched = s.build(WeightScheme::ProjectedArea);
        assert_eq!(sched.policy().scheme(), WeightScheme::ProjectedArea);
        let sched = s.build(WeightScheme::Unweighted);
        assert_eq!(sched.policy().scheme(), WeightScheme::Unweighted);
    }

    #[test]
    fn labels_cover_all_rows() {
        let labels: Vec<_> = PolicyKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(
            labels,
            vec!["FCFS", "PSRS", "SMART-FFIA", "SMART-NFIW", "Garey&Graham"]
        );
    }

    #[test]
    fn atlas_matrix_is_paper_plus_priority_family() {
        let m = AlgorithmSpec::atlas_matrix();
        assert_eq!(m.len(), 13 + 10 * 3);
        let set: std::collections::HashSet<_> = m.iter().collect();
        assert_eq!(set.len(), m.len());
        // Every scoring rule composes with all three backfill columns.
        for kind in PolicyKind::PRIORITY {
            for backfill in [
                BackfillMode::None,
                BackfillMode::Conservative,
                BackfillMode::Easy,
            ] {
                assert!(m.contains(&AlgorithmSpec::new(kind, backfill)));
            }
        }
        // The paper matrix is a strict prefix (report ordering relies on
        // it).
        assert_eq!(&m[..13], AlgorithmSpec::paper_matrix().as_slice());
    }

    #[test]
    fn build_dyn_covers_every_atlas_row() {
        for spec in AlgorithmSpec::atlas_matrix() {
            let s = spec.build_dyn(WeightScheme::Unweighted, true);
            assert_eq!(s.name(), spec.name());
            assert_eq!(s.queue_len(), 0);
        }
    }

    #[test]
    fn atlas_labels_are_unique() {
        let labels: std::collections::HashSet<_> =
            PolicyKind::atlas().iter().map(|k| k.label()).collect();
        assert_eq!(
            labels.len(),
            PolicyKind::ALL.len() + PolicyKind::PRIORITY.len()
        );
    }
}
