//! Algorithm specifications and the paper's evaluation matrix.
//!
//! Tables 3–6 evaluate five row algorithms against three column variants
//! (plain list scheduler, conservative backfilling, EASY backfilling),
//! with Garey & Graham appearing only in the list column because
//! "application of backfilling will be of no benefit for this method"
//! (§5.3). [`AlgorithmSpec::paper_matrix`] enumerates exactly those 13
//! combinations; [`AlgorithmSpec::reference`] is the FCFS + EASY baseline
//! the paper normalises against (§7: "the administrator selects the
//! simulation of FCFS with EASY backfilling to be a reference value as
//! this algorithm is used by the CTC").

use crate::backfill::BackfillMode;
use crate::order::OrderPolicy;
use crate::psrs::PsrsParams;
use crate::scheduler::ListScheduler;
use crate::smart::SmartVariant;
use crate::view::WeightScheme;

/// Row algorithm of the paper's tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// First-Come-First-Serve (§5.1).
    Fcfs,
    /// Preemptive Smith-Ratio Scheduling, adapted (§5.5).
    Psrs,
    /// SMART, First Fit Increasing Area (§5.4).
    SmartFfia,
    /// SMART, Next Fit Increasing Width-to-Weight (§5.4).
    SmartNfiw,
    /// Classical list scheduling (§5.3).
    GareyGraham,
}

impl PolicyKind {
    /// All rows in the paper's table order.
    pub const ALL: [PolicyKind; 5] = [
        PolicyKind::Fcfs,
        PolicyKind::Psrs,
        PolicyKind::SmartFfia,
        PolicyKind::SmartNfiw,
        PolicyKind::GareyGraham,
    ];

    /// Row label as printed in the paper.
    pub fn label(&self) -> &'static str {
        match self {
            PolicyKind::Fcfs => "FCFS",
            PolicyKind::Psrs => "PSRS",
            PolicyKind::SmartFfia => "SMART-FFIA",
            PolicyKind::SmartNfiw => "SMART-NFIW",
            PolicyKind::GareyGraham => "Garey&Graham",
        }
    }

    /// Materialise the ordering policy under a weight scheme.
    pub fn policy(&self, scheme: WeightScheme) -> OrderPolicy {
        match self {
            PolicyKind::Fcfs => OrderPolicy::Fcfs,
            PolicyKind::GareyGraham => OrderPolicy::GareyGraham,
            PolicyKind::SmartFfia => OrderPolicy::smart(SmartVariant::Ffia, scheme),
            PolicyKind::SmartNfiw => OrderPolicy::smart(SmartVariant::Nfiw, scheme),
            PolicyKind::Psrs => OrderPolicy::Psrs {
                params: PsrsParams::default(),
                scheme,
            },
        }
    }
}

/// One cell of the evaluation matrix: a row algorithm and a backfill
/// column.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct AlgorithmSpec {
    /// Row algorithm.
    pub kind: PolicyKind,
    /// Column variant.
    pub backfill: BackfillMode,
}

impl AlgorithmSpec {
    /// New spec.
    pub fn new(kind: PolicyKind, backfill: BackfillMode) -> Self {
        AlgorithmSpec { kind, backfill }
    }

    /// The paper's FCFS + EASY reference configuration.
    pub fn reference() -> Self {
        AlgorithmSpec::new(PolicyKind::Fcfs, BackfillMode::Easy)
    }

    /// The 13 combinations of Tables 3–6: 4 algorithms × 3 columns, plus
    /// Garey & Graham in the list column only.
    pub fn paper_matrix() -> Vec<AlgorithmSpec> {
        let mut out = Vec::with_capacity(13);
        for kind in [
            PolicyKind::Fcfs,
            PolicyKind::Psrs,
            PolicyKind::SmartFfia,
            PolicyKind::SmartNfiw,
        ] {
            for backfill in [
                BackfillMode::None,
                BackfillMode::Conservative,
                BackfillMode::Easy,
            ] {
                out.push(AlgorithmSpec::new(kind, backfill));
            }
        }
        out.push(AlgorithmSpec::new(
            PolicyKind::GareyGraham,
            BackfillMode::None,
        ));
        out
    }

    /// Build a runnable scheduler under the given weight scheme.
    pub fn build(&self, scheme: WeightScheme) -> ListScheduler {
        ListScheduler::new(self.kind.policy(scheme), self.backfill)
    }

    /// Full display name ("PSRS+EASY-Backfilling").
    pub fn name(&self) -> String {
        format!("{}+{}", self.kind.label(), self.backfill.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_has_thirteen_cells() {
        let m = AlgorithmSpec::paper_matrix();
        assert_eq!(m.len(), 13);
        let gg: Vec<_> = m
            .iter()
            .filter(|s| s.kind == PolicyKind::GareyGraham)
            .collect();
        assert_eq!(gg.len(), 1);
        assert_eq!(gg[0].backfill, BackfillMode::None);
    }

    #[test]
    fn matrix_is_unique() {
        let m = AlgorithmSpec::paper_matrix();
        let set: std::collections::HashSet<_> = m.iter().collect();
        assert_eq!(set.len(), m.len());
    }

    #[test]
    fn reference_is_fcfs_easy() {
        let r = AlgorithmSpec::reference();
        assert_eq!(r.name(), "FCFS+EASY-Backfilling");
        assert!(AlgorithmSpec::paper_matrix().contains(&r));
    }

    #[test]
    fn build_respects_scheme() {
        let s = AlgorithmSpec::new(PolicyKind::SmartFfia, BackfillMode::Easy);
        let sched = s.build(WeightScheme::ProjectedArea);
        assert_eq!(sched.policy().scheme(), WeightScheme::ProjectedArea);
        let sched = s.build(WeightScheme::Unweighted);
        assert_eq!(sched.policy().scheme(), WeightScheme::Unweighted);
    }

    #[test]
    fn labels_cover_all_rows() {
        let labels: Vec<_> = PolicyKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(
            labels,
            vec!["FCFS", "PSRS", "SMART-FFIA", "SMART-NFIW", "Garey&Graham"]
        );
    }
}
