//! The SMART shelf algorithm of Turek et al. [21] with the two packing
//! variants of Schwiegelshohn et al. [14] (§5.4).
//!
//! SMART builds a shelf schedule in three steps:
//!
//! 1. **Binning.** Jobs are assigned to bins by execution time; bin upper
//!    bounds form the geometric sequence `(0,1], (1,γ], (γ,γ²], …`.
//! 2. **Shelving.** Jobs within a bin are packed onto shelves (sub-
//!    schedules started concurrently), by one of:
//!    * *FFIA* — First Fit Increasing Area: sort by `time × nodes`
//!      ascending, place each job on the first shelf of its bin with room;
//!    * *NFIW* — Next Fit Increasing Width-to-Weight: sort by
//!      `nodes / weight` ascending, place on the current shelf or open a
//!      new one.
//! 3. **Ordering.** All shelves are ordered by Smith's rule [19]: the sum
//!    of job weights on the shelf divided by the longest execution time on
//!    the shelf; largest ratio first.
//!
//! Online (§5.4 modifications) SMART only produces a *job order* — the
//! concatenation of shelves in Smith order — which then feeds a greedy
//! list schedule with optional backfilling. That order is what
//! [`smart_order`] returns. Future availability enters downstream: the
//! shelf packer reasons only over the machine width, while the selection
//! pass consumes the machine's incremental availability calendar
//! ([`jobsched_sim::LiveProfile`]) through the backfilling scans — so the
//! profile rework leaves SMART's placements bit-identical.

use crate::view::JobView;
use jobsched_workload::{JobId, Time};

/// Shelf-packing variant (§5.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SmartVariant {
    /// First Fit Increasing Area.
    Ffia,
    /// Next Fit Increasing Width-to-Weight.
    Nfiw,
}

impl SmartVariant {
    /// Label used in algorithm names ("SMART-FFIA" / "SMART-NFIW").
    pub fn label(&self) -> &'static str {
        match self {
            SmartVariant::Ffia => "FFIA",
            SmartVariant::Nfiw => "NFIW",
        }
    }
}

/// One shelf: jobs started concurrently.
#[derive(Clone, Debug)]
struct Shelf {
    jobs: Vec<JobView>,
    used_nodes: u32,
    max_time: Time,
    weight_sum: f64,
}

impl Shelf {
    fn new() -> Self {
        Shelf {
            jobs: Vec::new(),
            used_nodes: 0,
            max_time: 0,
            weight_sum: 0.0,
        }
    }

    fn push(&mut self, job: JobView) {
        self.used_nodes += job.nodes;
        self.max_time = self.max_time.max(job.time);
        self.weight_sum += job.weight;
        self.jobs.push(job);
    }

    fn fits(&self, job: &JobView, machine_nodes: u32) -> bool {
        self.used_nodes + job.nodes <= machine_nodes
    }

    /// Smith ratio of the shelf: Σ weights / max execution time.
    fn smith_ratio(&self) -> f64 {
        self.weight_sum / self.max_time.max(1) as f64
    }
}

/// Bin index for an execution time: bin 0 covers `(0, 1]`, bin k covers
/// `(γ^(k-1), γ^k]`.
pub fn bin_index(time: Time, gamma: f64) -> u32 {
    assert!(gamma > 1.0, "gamma must exceed 1");
    if time <= 1 {
        return 0;
    }
    // Smallest k with γ^k ≥ time.
    let k = (time as f64).ln() / gamma.ln();
    let mut idx = k.ceil() as u32;
    // Guard against floating-point edge cases at exact powers.
    while idx > 0 && gamma.powi(idx as i32 - 1) >= time as f64 {
        idx -= 1;
    }
    while gamma.powi(idx as i32) < time as f64 {
        idx += 1;
    }
    idx
}

/// Compute the SMART job order for the given waiting jobs.
///
/// The returned ids are the shelves in Smith order, each shelf's jobs in
/// packing order. Deterministic: all ties break by job id (submission
/// order).
pub fn smart_order(
    jobs: &[JobView],
    machine_nodes: u32,
    gamma: f64,
    variant: SmartVariant,
) -> Vec<JobId> {
    if jobs.is_empty() {
        return Vec::new();
    }
    // Step 1: binning by execution time.
    let mut bins: std::collections::BTreeMap<u32, Vec<JobView>> = std::collections::BTreeMap::new();
    for &job in jobs {
        bins.entry(bin_index(job.time, gamma))
            .or_default()
            .push(job);
    }

    // Step 2: shelving within each bin.
    let mut shelves: Vec<(u32, usize, Shelf)> = Vec::new(); // (bin, shelf idx, shelf)
    for (bin, mut members) in bins {
        match variant {
            SmartVariant::Ffia => {
                members.sort_by(|a, b| {
                    a.area()
                        .partial_cmp(&b.area())
                        .expect("finite areas")
                        .then(a.id.cmp(&b.id))
                });
                let mut bin_shelves: Vec<Shelf> = Vec::new();
                for job in members {
                    match bin_shelves.iter_mut().find(|s| s.fits(&job, machine_nodes)) {
                        Some(shelf) => shelf.push(job),
                        None => {
                            let mut s = Shelf::new();
                            s.push(job);
                            bin_shelves.push(s);
                        }
                    }
                }
                for (i, s) in bin_shelves.into_iter().enumerate() {
                    shelves.push((bin, i, s));
                }
            }
            SmartVariant::Nfiw => {
                members.sort_by(|a, b| {
                    let ka = a.nodes as f64 / a.weight;
                    let kb = b.nodes as f64 / b.weight;
                    ka.partial_cmp(&kb)
                        .expect("finite keys")
                        .then(a.id.cmp(&b.id))
                });
                let mut bin_shelves: Vec<Shelf> = vec![Shelf::new()];
                for job in members {
                    let current = bin_shelves.last_mut().expect("non-empty");
                    if current.jobs.is_empty() || current.fits(&job, machine_nodes) {
                        current.push(job);
                    } else {
                        let mut s = Shelf::new();
                        s.push(job);
                        bin_shelves.push(s);
                    }
                }
                for (i, s) in bin_shelves.into_iter().enumerate() {
                    if !s.jobs.is_empty() {
                        shelves.push((bin, i, s));
                    }
                }
            }
        }
    }

    // Step 3: Smith ordering of shelves, largest ratio first.
    shelves.sort_by(|(ba, ia, a), (bb, ib, b)| {
        b.smith_ratio()
            .partial_cmp(&a.smith_ratio())
            .expect("finite ratios")
            .then(ba.cmp(bb))
            .then(ia.cmp(ib))
    });

    shelves
        .into_iter()
        .flat_map(|(_, _, s)| s.jobs.into_iter().map(|j| j.id))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(id: u32, nodes: u32, time: Time, weight: f64) -> JobView {
        JobView {
            id: JobId(id),
            nodes,
            time,
            weight,
        }
    }

    #[test]
    fn bin_index_geometric_gamma2() {
        assert_eq!(bin_index(1, 2.0), 0);
        assert_eq!(bin_index(2, 2.0), 1);
        assert_eq!(bin_index(3, 2.0), 2);
        assert_eq!(bin_index(4, 2.0), 2);
        assert_eq!(bin_index(5, 2.0), 3);
        assert_eq!(bin_index(8, 2.0), 3);
        assert_eq!(bin_index(1024, 2.0), 10);
        assert_eq!(bin_index(1025, 2.0), 11);
    }

    #[test]
    fn bin_index_other_gamma() {
        // γ=3: (0,1], (1,3], (3,9], (9,27] ...
        assert_eq!(bin_index(1, 3.0), 0);
        assert_eq!(bin_index(3, 3.0), 1);
        assert_eq!(bin_index(4, 3.0), 2);
        assert_eq!(bin_index(9, 3.0), 2);
        assert_eq!(bin_index(10, 3.0), 3);
    }

    #[test]
    fn empty_input_empty_order() {
        assert!(smart_order(&[], 256, 2.0, SmartVariant::Ffia).is_empty());
    }

    #[test]
    fn order_is_permutation() {
        let jobs: Vec<JobView> = (0..50)
            .map(|i| view(i, 1 + i % 17, 1 + (i as Time * 37) % 5000, 1.0))
            .collect();
        for variant in [SmartVariant::Ffia, SmartVariant::Nfiw] {
            let order = smart_order(&jobs, 64, 2.0, variant);
            let mut ids: Vec<u32> = order.iter().map(|j| j.0).collect();
            ids.sort_unstable();
            assert_eq!(ids, (0..50).collect::<Vec<_>>(), "{variant:?}");
        }
    }

    #[test]
    fn unweighted_short_shelves_first() {
        // Many short unit jobs vs one long job: the short-job shelf has a
        // much larger Smith ratio (count / short time) and must lead.
        let mut jobs = vec![view(0, 10, 10_000, 1.0)];
        for i in 1..=5 {
            jobs.push(view(i, 10, 10, 1.0));
        }
        let order = smart_order(&jobs, 64, 2.0, SmartVariant::Ffia);
        assert_eq!(
            order.last(),
            Some(&JobId(0)),
            "long job scheduled last: {order:?}"
        );
    }

    #[test]
    fn ffia_packs_first_fit_by_area() {
        // Same bin (times 9, 10 → bin 4 for γ=2 covers (8,16]).
        // Areas: j0=90, j1=60, j2=100. Increasing area: j1, j0, j2.
        // Machine 16: shelf gets j1 (6) + j0 (9) = 15; j2 (10) opens new.
        let jobs = vec![
            view(0, 9, 10, 1.0),
            view(1, 6, 10, 1.0),
            view(2, 10, 10, 1.0),
        ];
        let order = smart_order(&jobs, 16, 2.0, SmartVariant::Ffia);
        assert_eq!(order, vec![JobId(1), JobId(0), JobId(2)]);
    }

    #[test]
    fn nfiw_never_looks_back() {
        // Next-fit: once a shelf closes, earlier space is wasted.
        // Width/weight keys: j2 = 0.2, j0 = 0.6, j1 = 1.0, j3 = 1.0
        // (tie → id order). Shelf1 takes j2 + j0 (8 nodes); j1 (10) does
        // not fit and opens shelf2; j3 (width 1) would fit shelf1 under
        // first-fit, but next-fit places it on the current shelf2.
        let jobs = vec![
            view(0, 6, 10, 10.0),
            view(1, 10, 10, 10.0),
            view(2, 2, 10, 10.0),
            view(3, 1, 10, 1.0),
        ];
        let order = smart_order(&jobs, 16, 2.0, SmartVariant::Nfiw);
        // Shelf1 = [j2, j0] (weight 20), shelf2 = [j1, j3] (weight 11);
        // equal max times ⇒ shelf1 first.
        assert_eq!(order, vec![JobId(2), JobId(0), JobId(1), JobId(3)]);
    }

    #[test]
    fn weighted_dense_shelf_first() {
        // Two single-job shelves with equal time: higher weight first.
        let jobs = vec![view(0, 8, 100, 1.0), view(1, 8, 100, 50.0)];
        let order = smart_order(&jobs, 8, 2.0, SmartVariant::Ffia);
        assert_eq!(order, vec![JobId(1), JobId(0)]);
    }

    #[test]
    fn deterministic_under_permutation() {
        let jobs: Vec<JobView> = (0..30)
            .map(|i| {
                view(
                    i,
                    1 + i % 9,
                    1 + (i as Time * 13) % 300,
                    1.0 + (i % 4) as f64,
                )
            })
            .collect();
        let mut shuffled = jobs.clone();
        shuffled.reverse();
        for variant in [SmartVariant::Ffia, SmartVariant::Nfiw] {
            assert_eq!(
                smart_order(&jobs, 32, 2.0, variant),
                smart_order(&shuffled, 32, 2.0, variant),
                "{variant:?}"
            );
        }
    }

    #[test]
    fn shelf_never_overflows_machine() {
        let jobs: Vec<JobView> = (0..200)
            .map(|i| view(i, 1 + (i * 7) % 60, 1 + (i as Time * 31) % 1000, 1.0))
            .collect();
        // Reconstruct shelf widths from the order: jobs in one shelf share
        // a bin and appear contiguously. Validate via packing invariant
        // directly instead: re-run packing logic by checking no prefix of
        // same-bin contiguous jobs exceeds the machine... simpler: the
        // algorithm's internal assertion is the Shelf::fits check; here we
        // just confirm a permutation is produced for a stressy input.
        let order = smart_order(&jobs, 64, 2.0, SmartVariant::Ffia);
        assert_eq!(order.len(), jobs.len());
    }

    #[test]
    #[should_panic(expected = "gamma must exceed 1")]
    fn gamma_one_rejected() {
        let _ = bin_index(5, 1.0);
    }
}
