//! Time-regime switching: combining the selected algorithms.
//!
//! The paper's §7 conclusion leaves one step open: "In addition she must
//! evaluate the effect of combining the selected algorithms." Institution
//! B's policy prescribes different goals for weekday daytime (Rule 5:
//! response time) and nights/weekends (Rule 6: system load), so the final
//! production scheduler must *switch* between the two chosen algorithms
//! as the clock crosses the window boundaries.
//!
//! [`SwitchingScheduler`] holds one wait queue and two ordering policies;
//! at every decision point the policy owning the current instant orders
//! the queue. Already-running jobs are never disturbed (no time sharing),
//! so a switch only changes how the *backlog* is drained — which is
//! exactly what the policy rules govern.

use crate::backfill::{select_conservative, select_easy, select_head_blocking, BackfillMode};
use crate::garey_graham::select_greedy_any;
use crate::order::OrderPolicy;
use crate::scheduler::Waiting;
use crate::view::JobView;
use jobsched_sim::{JobRequest, Machine, Scheduler};
use jobsched_workload::job::{DAY, HOUR, WEEK};
use jobsched_workload::{JobId, Time};

/// A daily switching rule: `day` applies 7am–8pm on weekdays, `night`
/// otherwise (Example 5, Rules 5–6). Day 0 of simulated time is taken as
/// a Monday, matching the workload generators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DayNightWindow {
    /// First hour (inclusive) of the daytime regime.
    pub start_hour: u8,
    /// Last hour (exclusive) of the daytime regime.
    pub end_hour: u8,
}

impl Default for DayNightWindow {
    fn default() -> Self {
        DayNightWindow {
            start_hour: 7,
            end_hour: 20,
        }
    }
}

impl DayNightWindow {
    /// Whether `t` falls into the daytime regime (weekday, in-window).
    pub fn is_daytime(&self, t: Time) -> bool {
        let weekday = (t % WEEK) / DAY < 5;
        let hour = ((t % DAY) / HOUR) as u8;
        weekday && (self.start_hour..self.end_hour).contains(&hour)
    }
}

/// One regime: an ordering policy, its backfill mode, and its cached
/// priority order.
#[derive(Debug)]
struct Regime {
    policy: OrderPolicy,
    backfill: BackfillMode,
    priority: Vec<JobId>,
    covered: std::collections::BTreeSet<JobId>,
}

impl Regime {
    fn new(policy: OrderPolicy, backfill: BackfillMode) -> Self {
        Regime {
            policy,
            backfill,
            priority: Vec::new(),
            covered: std::collections::BTreeSet::new(),
        }
    }

    /// Current order over the waiting queue (recompute on the §5.4
    /// trigger: unordered fraction above ⅓).
    fn order(&mut self, waiting: &Waiting, machine_nodes: u32) -> Vec<JobId> {
        if !self.policy.is_dynamic() {
            return waiting.ids().collect();
        }
        let covered = waiting.ids().filter(|id| self.covered.contains(id)).count();
        let unordered = waiting.len() - covered;
        if unordered as f64 > waiting.len() as f64 / 3.0 {
            let views: Vec<JobView> = waiting
                .requests()
                .map(|r| JobView::of(r, self.policy.scheme()))
                .collect();
            self.priority = self.policy.compute(&views, machine_nodes);
            self.covered = self.priority.iter().copied().collect();
            return self.priority.clone();
        }
        self.priority.retain(|id| waiting.contains(*id));
        let mut order = self.priority.clone();
        order.extend(waiting.ids().filter(|id| !self.covered.contains(id)));
        order
    }

    fn forget(&mut self, id: JobId) {
        self.covered.remove(&id);
    }
}

/// The combined production scheduler: Rule 5's algorithm by day, Rule 6's
/// by night/weekend, one shared wait queue.
#[derive(Debug)]
pub struct SwitchingScheduler {
    window: DayNightWindow,
    day: Regime,
    night: Regime,
    waiting: Waiting,
    /// Operator override: `Some(true)` pins the day regime, `Some(false)`
    /// the night regime, `None` follows the clock. A serving daemon
    /// exposes this through its `policy` command.
    forced: Option<bool>,
}

impl SwitchingScheduler {
    /// Build from the two regime configurations.
    pub fn new(
        day: (OrderPolicy, BackfillMode),
        night: (OrderPolicy, BackfillMode),
        window: DayNightWindow,
    ) -> Self {
        SwitchingScheduler {
            window,
            day: Regime::new(day.0, day.1),
            night: Regime::new(night.0, night.1),
            waiting: Waiting::new(),
            forced: None,
        }
    }

    /// The paper's §7 outcome: SMART-FFIA with EASY backfilling for the
    /// daytime response-time goal, Garey & Graham for the off-peak load
    /// goal.
    pub fn paper_combination() -> Self {
        use crate::smart::SmartVariant;
        use crate::view::WeightScheme;
        SwitchingScheduler::new(
            (
                OrderPolicy::smart(SmartVariant::Ffia, WeightScheme::Unweighted),
                BackfillMode::Easy,
            ),
            (OrderPolicy::GareyGraham, BackfillMode::None),
            DayNightWindow::default(),
        )
    }

    /// Whether the *day* regime governs instant `t`, honouring a forced
    /// override.
    fn daytime_at(&self, t: Time) -> bool {
        self.forced.unwrap_or_else(|| self.window.is_daytime(t))
    }

    /// Which regime is active at `t` (`"day"` / `"night"`).
    pub fn active_regime_name(&self, t: Time) -> &'static str {
        if self.daytime_at(t) {
            "day"
        } else {
            "night"
        }
    }

    /// Pin the active regime (`Some(true)` = day, `Some(false)` = night)
    /// or return control to the clock (`None`). Takes effect at the next
    /// decision round; running jobs are never disturbed.
    pub fn force_regime(&mut self, forced: Option<bool>) {
        self.forced = forced;
    }

    /// The current override, if any.
    pub fn forced_regime(&self) -> Option<bool> {
        self.forced
    }
}

impl Scheduler for SwitchingScheduler {
    fn name(&self) -> String {
        format!(
            "switch[day: {}+{} | night: {}+{}]",
            self.day.policy.label(),
            self.day.backfill.label(),
            self.night.policy.label(),
            self.night.backfill.label()
        )
    }

    fn submit(&mut self, job: JobRequest, _now: Time) {
        self.waiting.insert(job);
    }

    fn cancel(&mut self, id: JobId, _now: Time) {
        if self.waiting.contains(id) {
            self.waiting.remove(id);
            self.day.forget(id);
            self.night.forget(id);
        }
    }

    fn select_starts(&mut self, now: Time, machine: &Machine) -> Vec<JobId> {
        if machine.free_nodes() == 0 || self.waiting.is_empty() {
            return Vec::new();
        }
        let daytime = self.daytime_at(now);
        let regime = if daytime {
            &mut self.day
        } else {
            &mut self.night
        };
        let order = regime.order(&self.waiting, machine.total_nodes());
        let picks = match (&regime.policy, regime.backfill) {
            (OrderPolicy::GareyGraham, _) => {
                select_greedy_any(order.iter().copied(), &self.waiting, machine)
            }
            (_, BackfillMode::None) => {
                select_head_blocking(order.iter().copied(), &self.waiting, machine)
            }
            (_, BackfillMode::Easy) => {
                select_easy(order.iter().copied(), &self.waiting, machine, now)
            }
            (_, BackfillMode::Conservative) => {
                select_conservative(order.iter().copied(), &self.waiting, machine, now)
            }
        };
        for &id in &picks {
            self.waiting.remove(id);
            self.day.forget(id);
            self.night.forget(id);
        }
        picks
    }

    fn queue_len(&self) -> usize {
        self.waiting.len()
    }

    fn next_wakeup(&self, now: Time) -> Option<Time> {
        if self.waiting.is_empty() {
            return None;
        }
        // A forced regime never flips on its own: no boundary to wake at.
        if self.forced.is_some() {
            return None;
        }
        // Wake at the next regime boundary: the backlog is re-ordered by
        // the other regime's policy there (hour granularity suffices —
        // both boundaries lie on whole hours).
        let current = self.window.is_daytime(now);
        let mut t = (now / HOUR + 1) * HOUR;
        while self.window.is_daytime(t) == current {
            t += HOUR;
            debug_assert!(t < now + WEEK, "boundary search runaway");
        }
        Some(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smart::SmartVariant;
    use crate::view::WeightScheme;
    use jobsched_sim::simulate;
    use jobsched_workload::ctc::prepared_ctc_workload;

    #[test]
    fn day_night_window_classification() {
        let w = DayNightWindow::default();
        assert!(w.is_daytime(12 * HOUR)); // Monday noon
        assert!(!w.is_daytime(2 * HOUR)); // Monday 2am
        assert!(!w.is_daytime(20 * HOUR)); // Monday 8pm sharp (exclusive)
        assert!(w.is_daytime(7 * HOUR)); // 7am sharp (inclusive)
        assert!(!w.is_daytime(5 * DAY + 12 * HOUR)); // Saturday noon
        assert!(!w.is_daytime(6 * DAY + 12 * HOUR)); // Sunday noon
        assert!(w.is_daytime(7 * DAY + 12 * HOUR)); // next Monday noon
    }

    #[test]
    fn day_night_window_second_level_edges() {
        let w = DayNightWindow::default();
        // The regime flips exactly on the whole-hour boundary, not a
        // second early or late.
        assert!(!w.is_daytime(7 * HOUR - 1)); // Monday 06:59:59
        assert!(w.is_daytime(7 * HOUR)); // Monday 07:00:00
        assert!(w.is_daytime(20 * HOUR - 1)); // Monday 19:59:59
        assert!(!w.is_daytime(20 * HOUR)); // Monday 20:00:00
                                           // Friday evening rolls straight into the weekend regime and stays
                                           // there until Monday 07:00.
        assert!(w.is_daytime(4 * DAY + 20 * HOUR - 1)); // Friday 19:59:59
        assert!(!w.is_daytime(4 * DAY + 20 * HOUR)); // Friday 20:00:00
        assert!(!w.is_daytime(7 * DAY + 7 * HOUR - 1)); // Monday 06:59:59 (week 2)
        assert!(w.is_daytime(7 * DAY + 7 * HOUR)); // Monday 07:00:00 (week 2)
    }

    #[test]
    fn custom_window_hours_are_respected() {
        // A midnight-anchored window: start is inclusive at t = 0.
        let w = DayNightWindow {
            start_hour: 0,
            end_hour: 6,
        };
        assert!(w.is_daytime(0));
        assert!(w.is_daytime(6 * HOUR - 1));
        assert!(!w.is_daytime(6 * HOUR));
        // An empty window is never daytime.
        let empty = DayNightWindow {
            start_hour: 12,
            end_hour: 12,
        };
        assert!(!empty.is_daytime(12 * HOUR));
    }

    #[test]
    fn next_wakeup_lands_exactly_on_regime_boundaries() {
        let mut s = SwitchingScheduler::paper_combination();
        assert_eq!(s.next_wakeup(12 * HOUR), None, "empty queue never wakes");
        s.submit(
            JobRequest {
                id: JobId(0),
                submit: 0,
                nodes: 1,
                class: jobsched_workload::ClassId(0),
                requested_time: 100,
                user: 0,
            },
            0,
        );
        // Day → night boundary at 20:00, including from 07:00 sharp.
        assert_eq!(s.next_wakeup(12 * HOUR), Some(20 * HOUR));
        assert_eq!(s.next_wakeup(7 * HOUR), Some(20 * HOUR));
        // Night → day boundary at 07:00.
        assert_eq!(s.next_wakeup(2 * HOUR), Some(7 * HOUR));
        // 20:00 sharp is already night: the next boundary is tomorrow 07:00.
        assert_eq!(s.next_wakeup(20 * HOUR), Some(DAY + 7 * HOUR));
        // Friday evening skips the whole weekend to Monday 07:00.
        assert_eq!(s.next_wakeup(4 * DAY + 20 * HOUR), Some(7 * DAY + 7 * HOUR));
        assert_eq!(s.next_wakeup(5 * DAY + 12 * HOUR), Some(7 * DAY + 7 * HOUR));
    }

    #[test]
    fn forced_regime_overrides_the_clock() {
        let mut s = SwitchingScheduler::paper_combination();
        assert_eq!(s.forced_regime(), None);
        s.force_regime(Some(false));
        assert_eq!(s.active_regime_name(12 * HOUR), "night"); // noon, forced night
        s.force_regime(Some(true));
        assert_eq!(s.active_regime_name(2 * HOUR), "day"); // 2am, forced day
        s.force_regime(None);
        assert_eq!(s.active_regime_name(2 * HOUR), "night"); // back to the clock
    }

    #[test]
    fn forced_regime_suppresses_boundary_wakeups() {
        let mut s = SwitchingScheduler::paper_combination();
        s.submit(
            JobRequest {
                id: JobId(0),
                submit: 0,
                nodes: 1,
                class: jobsched_workload::ClassId(0),
                requested_time: 100,
                user: 0,
            },
            0,
        );
        assert_eq!(s.next_wakeup(12 * HOUR), Some(20 * HOUR));
        s.force_regime(Some(true));
        assert_eq!(s.next_wakeup(12 * HOUR), None, "pinned regime never flips");
        s.force_regime(None);
        assert_eq!(s.next_wakeup(12 * HOUR), Some(20 * HOUR));
    }

    #[test]
    fn forcing_night_equals_the_night_scheduler() {
        // With the night regime pinned, the combined scheduler
        // degenerates to its off-peak algorithm. Garey & Graham is
        // stateless (greedy over submission order), so — unlike the
        // dynamic SMART day regime — exact placement identity holds.
        let w = prepared_ctc_workload(600, 1999);
        let mut forced = SwitchingScheduler::paper_combination();
        forced.force_regime(Some(false));
        let mut night_only =
            crate::ListScheduler::new(OrderPolicy::GareyGraham, BackfillMode::None);
        let a = simulate(&w, &mut forced);
        let b = simulate(&w, &mut night_only);
        for j in w.jobs() {
            assert_eq!(a.schedule.placement(j.id), b.schedule.placement(j.id));
        }
    }

    #[test]
    fn produces_valid_complete_schedules() {
        let w = prepared_ctc_workload(1_200, 1999);
        let mut s = SwitchingScheduler::paper_combination();
        let out = simulate(&w, &mut s);
        assert_eq!(out.schedule.completion_ratio(), 1.0);
        assert!(out.schedule.validate(&w).is_empty());
    }

    #[test]
    fn name_mentions_both_regimes() {
        let s = SwitchingScheduler::paper_combination();
        assert!(s.name().contains("SMART-FFIA"));
        assert!(s.name().contains("Garey&Graham"));
    }

    #[test]
    fn active_regime_tracks_clock() {
        let s = SwitchingScheduler::paper_combination();
        assert_eq!(s.active_regime_name(12 * HOUR), "day");
        assert_eq!(s.active_regime_name(23 * HOUR), "night");
    }

    #[test]
    fn degenerate_combination_equals_single_fcfs() {
        // FCFS in both regimes is stateless (submission order), so the
        // combined scheduler must reproduce the single FCFS schedule
        // exactly. (Dynamic policies keep per-regime recomputation state,
        // so only stateless policies admit this exact check.)
        let w = prepared_ctc_workload(600, 7);
        let mut combined = SwitchingScheduler::new(
            (OrderPolicy::Fcfs, BackfillMode::Easy),
            (OrderPolicy::Fcfs, BackfillMode::Easy),
            DayNightWindow::default(),
        );
        let mut single = crate::ListScheduler::new(OrderPolicy::Fcfs, BackfillMode::Easy);
        let a = simulate(&w, &mut combined);
        let b = simulate(&w, &mut single);
        for j in w.jobs() {
            assert_eq!(a.schedule.placement(j.id), b.schedule.placement(j.id));
        }
    }

    #[test]
    fn switching_changes_the_schedule() {
        let w = prepared_ctc_workload(1_200, 1999);
        let mut combined = SwitchingScheduler::paper_combination();
        let mut day_only = crate::ListScheduler::new(
            OrderPolicy::smart(SmartVariant::Ffia, WeightScheme::Unweighted),
            BackfillMode::Easy,
        );
        let a = simulate(&w, &mut combined);
        let b = simulate(&w, &mut day_only);
        let differs = w
            .jobs()
            .iter()
            .any(|j| a.schedule.placement(j.id) != b.schedule.placement(j.id));
        assert!(differs, "night regime should alter some placements");
    }
}
