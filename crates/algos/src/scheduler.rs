//! The unified list scheduler: ordering policy × selection strategy.
//!
//! Every algorithm of §5 is an instance of this scheduler: FCFS and
//! Garey & Graham use the submission order directly; SMART and PSRS keep a
//! priority order produced by their offline algorithm over the current
//! wait queue, re-run per the §5.4 trigger; jobs that arrived since the
//! last run are appended in submission order until the next run covers
//! them. Selection is head-blocking greedy, optionally upgraded with
//! conservative or EASY backfilling (§5.2); Garey & Graham instead starts
//! anything that fits (§5.3).

use crate::backfill::{
    scan_conservative_in, scan_conservative_live_in, scan_easy_in, scan_easy_live_in,
    select_head_blocking_in, BackfillMode,
};
use crate::garey_graham::select_greedy_any_in;
use crate::order::{OrderPolicy, ReorderTrigger};
use crate::view::JobView;
use jobsched_sim::{JobRequest, Machine, Profile, Scheduler};
use jobsched_workload::{ClassId, JobId, Time};
use std::collections::BTreeSet;

/// How the backfilling scans obtain the availability step function.
///
/// Scheduling decisions are bit-identical across modes (the differential
/// property tests enforce it); only the cost differs, which is what
/// `BENCH_sched.json` measures.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ProfileMode {
    /// Rebuild the profile from the running set on every decision
    /// ([`Profile::from_machine`]: collect + sort). The seed behaviour,
    /// kept as the measurable baseline and the differential oracle.
    Rebuild,
    /// Read the machine's incrementally-maintained
    /// [`jobsched_sim::LiveProfile`] (O(log n) per job event), merging it
    /// into a reusable scratch buffer only when a scan must overlay
    /// reservations.
    #[default]
    Incremental,
}

/// The wait queue: requests keyed by job id. Ids are assigned in
/// submission order by the workload, so ascending-id iteration *is*
/// submission order. An ordered map (never a dense id-indexed vector:
/// that would grow with the *trace*, and against a streamed
/// multi-million-job source the queue must stay O(backlog)) — lookups
/// are O(log q) in the queue length, which the backlog bounds.
#[derive(Clone, Debug, Default)]
pub struct Waiting {
    queue: std::collections::BTreeMap<JobId, JobRequest>,
}

impl Waiting {
    /// Empty queue.
    pub fn new() -> Self {
        Waiting::default()
    }

    /// Add a request.
    pub fn insert(&mut self, job: JobRequest) {
        let id = job.id;
        assert!(
            self.queue.insert(id, job).is_none(),
            "job {id} submitted twice"
        );
    }

    /// Remove a request (when it starts).
    pub fn remove(&mut self, id: JobId) -> JobRequest {
        self.queue.remove(&id).expect("removing unknown job")
    }

    /// Look up a waiting request. Panics on unknown ids (scheduler bug).
    #[inline]
    pub fn get(&self, id: JobId) -> &JobRequest {
        self.queue.get(&id).expect("unknown waiting job")
    }

    /// Whether the job is waiting.
    #[inline]
    pub fn contains(&self, id: JobId) -> bool {
        self.queue.contains_key(&id)
    }

    /// Number of waiting jobs.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Waiting ids in submission order.
    pub fn ids(&self) -> impl Iterator<Item = JobId> + '_ {
        self.queue.keys().copied()
    }

    /// Highest waiting id — the current queue tail.
    pub fn max_id(&self) -> Option<JobId> {
        self.queue.keys().next_back().copied()
    }

    /// Waiting requests in submission order.
    pub fn requests(&self) -> impl Iterator<Item = &JobRequest> + '_ {
        self.queue.values()
    }
}

/// The "nothing can start" state remembered between events so that a new
/// submission is tested in O(1) instead of re-scanning the whole queue.
///
/// Soundness: between two finish events the free-node count only shrinks
/// (starts) and absolute-time projections (the EASY shadow, conservative
/// reservations) stay valid, so a job rejected once stays rejected and a
/// later arrival can be judged against the remembered state alone. Any
/// finish event or priority re-computation invalidates the cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum BlockedCache {
    /// Head-blocking list schedule: the head does not fit, so nothing
    /// behind it may start either.
    HeadBlocked,
    /// Head-blocking list schedule with *no* blocked head (the whole queue
    /// started): arrivals start in order while they fit; the first misfit
    /// becomes the new blocked head.
    OpenList {
        /// Free nodes remaining.
        leftover: u32,
    },
    /// Garey & Graham: `leftover` free nodes remained after starting
    /// everything that fits; a new arrival starts iff it fits those.
    GreedyAny {
        /// Free nodes remaining.
        leftover: u32,
    },
    /// EASY: the blocked head's projected start and the spare capacity a
    /// new arrival may consume without postponing it.
    Easy {
        /// The head's projected start.
        shadow: Time,
        /// Nodes spare at the shadow instant.
        extra: u32,
        /// Free nodes now.
        free: u32,
    },
    /// Conservative: free nodes left *now* after the reservation
    /// calendar; an arrival needing more cannot start, one that fits
    /// forces a full re-scan (its reservation interacts with the chain).
    Conservative {
        /// Free nodes remaining now.
        leftover: u32,
    },
}

/// A complete scheduling algorithm: ordering policy + backfilling mode.
#[derive(Debug)]
pub struct ListScheduler {
    policy: OrderPolicy,
    backfill: BackfillMode,
    trigger: ReorderTrigger,
    waiting: Waiting,
    /// Priority order from the last offline run (dynamic policies only).
    /// May contain ids that have since started; filtered lazily.
    priority: Vec<JobId>,
    /// Jobs covered by `priority`. Ordered container: scheduling state
    /// must never depend on hash-iteration order.
    covered: BTreeSet<JobId>,
    /// Number of offline re-computations performed (diagnostics; the §5.4
    /// trigger exists to keep this low).
    recomputations: u64,
    /// Whether the incremental blocked-state cache is enabled (it is by
    /// default; differential tests run with it off).
    caching: bool,
    /// How the backfilling scans obtain the availability profile.
    profile_mode: ProfileMode,
    /// Reusable step-function buffer for [`ProfileMode::Incremental`]
    /// scans; overwritten (total and steps) by every snapshot.
    scratch: Profile,
    cache: Option<BlockedCache>,
    /// Jobs submitted since the cache was established.
    arrivals: Vec<JobId>,
    /// The §5.4 trigger fired at a submission; the next ordering must
    /// re-run the offline algorithm. Evaluating the trigger only at
    /// submissions (as the paper describes) keeps re-computation points
    /// identical whether or not the cache is enabled.
    reorder_pending: bool,
}

impl ListScheduler {
    /// Build a scheduler from policy and backfill mode.
    pub fn new(policy: OrderPolicy, backfill: BackfillMode) -> Self {
        ListScheduler {
            policy,
            backfill,
            trigger: ReorderTrigger::default(),
            waiting: Waiting::new(),
            priority: Vec::new(),
            covered: BTreeSet::new(),
            recomputations: 0,
            caching: true,
            profile_mode: ProfileMode::default(),
            scratch: Profile::empty(1, 0),
            cache: None,
            arrivals: Vec::new(),
            reorder_pending: false,
        }
    }

    /// Override the re-computation trigger (ablation benches).
    pub fn with_trigger(mut self, trigger: ReorderTrigger) -> Self {
        self.trigger = trigger;
        self
    }

    /// Enable or disable the incremental blocked-state cache. Disabling
    /// forces a full queue scan on every decision — semantically
    /// identical, asymptotically slower; used as the oracle in
    /// differential tests.
    pub fn with_caching(mut self, caching: bool) -> Self {
        self.caching = caching;
        if !caching {
            self.cache = None;
            self.arrivals.clear();
        }
        self
    }

    /// Choose how the backfilling scans obtain the availability profile.
    /// [`ProfileMode::Rebuild`] restores the rebuild-per-decision seed
    /// behaviour — semantically identical, asymptotically slower; used as
    /// the baseline in `BENCH_sched.json` and as the oracle in the
    /// differential tests.
    pub fn with_profile_mode(mut self, mode: ProfileMode) -> Self {
        self.profile_mode = mode;
        self
    }

    /// The ordering policy.
    pub fn policy(&self) -> &OrderPolicy {
        &self.policy
    }

    /// How the backfilling scans obtain the availability profile.
    pub fn profile_mode(&self) -> ProfileMode {
        self.profile_mode
    }

    /// The backfilling mode.
    pub fn backfill(&self) -> BackfillMode {
        self.backfill
    }

    /// How many times the offline order was recomputed.
    pub fn recomputations(&self) -> u64 {
        self.recomputations
    }

    fn invalidate_cache(&mut self) {
        self.cache = None;
        self.arrivals.clear();
    }

    /// Current priority order over the waiting queue.
    fn effective_order(&mut self, machine_nodes: u32) -> Vec<JobId> {
        if !self.policy.is_dynamic() {
            return self.waiting.ids().collect();
        }
        if self.reorder_pending {
            self.reorder_pending = false;
            let views: Vec<JobView> = self
                .waiting
                .requests()
                .map(|r| JobView::of(r, self.policy.scheme()))
                .collect();
            self.priority = self.policy.compute(&views, machine_nodes);
            self.covered = self.priority.iter().copied().collect();
            self.recomputations += 1;
            return self.priority.clone();
        }
        // Keep the existing order, appending uncovered arrivals at the
        // tail in submission order.
        self.priority.retain(|id| self.waiting.contains(*id));
        let mut order = self.priority.clone();
        order.extend(self.waiting.ids().filter(|id| !self.covered.contains(id)));
        order
    }

    /// O(new arrivals) decision against the remembered blocked state.
    /// Returns the picks and writes the updated cache back.
    fn incremental_starts(&mut self, now: Time, cache: BlockedCache) -> Vec<JobId> {
        let mut picks = Vec::new();
        let updated = match cache {
            BlockedCache::HeadBlocked => {
                // Arrivals queue behind the blocked head; nothing starts.
                self.arrivals.clear();
                BlockedCache::HeadBlocked
            }
            BlockedCache::OpenList { mut leftover } => {
                let mut blocked = false;
                for &id in &self.arrivals {
                    if blocked {
                        break;
                    }
                    let nodes = self.waiting.get(id).nodes;
                    if nodes <= leftover {
                        leftover -= nodes;
                        picks.push(id);
                    } else {
                        blocked = true;
                    }
                }
                self.arrivals.clear();
                if blocked {
                    BlockedCache::HeadBlocked
                } else {
                    BlockedCache::OpenList { leftover }
                }
            }
            BlockedCache::GreedyAny { mut leftover } => {
                for &id in &self.arrivals {
                    let nodes = self.waiting.get(id).nodes;
                    if nodes <= leftover {
                        leftover -= nodes;
                        picks.push(id);
                    }
                    // Rejected arrivals stay rejected: leftover only
                    // shrinks until the next invalidation.
                }
                self.arrivals.clear();
                BlockedCache::GreedyAny { leftover }
            }
            BlockedCache::Easy {
                shadow,
                mut extra,
                mut free,
            } => {
                let open = shadow >= jobsched_sim::profile::HORIZON;
                for &id in &self.arrivals {
                    let job = *self.waiting.get(id);
                    let fits_now = job.nodes <= free;
                    let passes = fits_now
                        && (now + job.requested_time.max(1) <= shadow || job.nodes <= extra);
                    if passes {
                        free -= job.nodes;
                        if now + job.requested_time.max(1) > shadow {
                            extra -= job.nodes;
                        }
                        picks.push(id);
                    } else if open {
                        // No head was blocked when this state was taken;
                        // this rejection creates a new blocked head whose
                        // shadow the cache cannot know. The queue in this
                        // state holds only recent arrivals, so a full
                        // re-scan is cheap.
                        self.invalidate_cache();
                        return Vec::new(); // caller falls through to full scan
                    }
                    // With a real blocked head (shadow < HORIZON) a
                    // rejection is final: free and extra only shrink until
                    // the next invalidation.
                }
                self.arrivals.clear();
                BlockedCache::Easy {
                    shadow,
                    extra,
                    free,
                }
            }
            BlockedCache::Conservative { leftover } => {
                if self
                    .arrivals
                    .iter()
                    .any(|&id| self.waiting.get(id).nodes <= leftover)
                {
                    // The arrival might start now; its reservation
                    // interacts with the calendar — full re-scan.
                    self.invalidate_cache();
                    return Vec::new(); // caller falls through to full scan
                }
                self.arrivals.clear();
                BlockedCache::Conservative { leftover }
            }
        };
        self.cache = Some(updated);
        picks
    }

    /// Decision scan over a multi-class machine: the priority order is
    /// computed once, then each node-class pool is scanned independently
    /// over the jobs resolved to it — partitioned scheduling, so a wide
    /// pick can never consume thin capacity or vice versa. The
    /// blocked-state cache describes a single pool and is bypassed here
    /// (`self.cache` stays `None`, so submissions never accumulate
    /// arrivals against a stale state).
    fn select_starts_classed(&mut self, now: Time, machine: &Machine) -> Vec<JobId> {
        debug_assert!(
            self.cache.is_none(),
            "blocked cache leaked into classed mode"
        );
        let config = ScanConfig {
            greedy_any: matches!(self.policy, OrderPolicy::GareyGraham),
            backfill: self.backfill,
            profile_mode: self.profile_mode,
        };
        let order: Vec<JobId> = if self.policy.is_dynamic() {
            self.effective_order(machine.total_nodes())
        } else {
            self.waiting.ids().collect()
        };
        let mut picks = Vec::new();
        for c in 0..machine.class_count() {
            let class = ClassId(c as u8);
            if machine.free_in(class) == 0 {
                continue;
            }
            // Classes partition the queue: a job picked for an earlier
            // pool never appears in a later pool's order.
            let class_order = order
                .iter()
                .copied()
                .filter(|&id| self.waiting.get(id).class == class);
            let (p, _) = full_scan(
                class,
                config,
                &mut self.scratch,
                class_order,
                &self.waiting,
                machine,
                now,
            );
            picks.extend(p);
        }
        for &id in &picks {
            self.waiting.remove(id);
            self.covered.remove(&id);
        }
        picks
    }
}

/// Selection-strategy configuration of one full decision scan. Shared
/// between [`ListScheduler`] and [`crate::priority::PriorityScheduler`]:
/// both dispatch an explicit priority order through [`full_scan`].
#[derive(Clone, Copy)]
pub(crate) struct ScanConfig {
    pub(crate) greedy_any: bool,
    pub(crate) backfill: BackfillMode,
    pub(crate) profile_mode: ProfileMode,
}

/// One full decision scan over one node-class pool: dispatch the order to
/// the selection strategy and describe the blocked state it leaves
/// behind. `scratch` is the reusable profile buffer for
/// [`ProfileMode::Incremental`] scans. On a single-class machine
/// `ClassId(0)` is the whole machine; the blocked state is only cached
/// then (a multi-class machine would need one cache per pool).
pub(crate) fn full_scan<I: IntoIterator<Item = JobId>>(
    class: ClassId,
    config: ScanConfig,
    scratch: &mut Profile,
    order: I,
    waiting: &Waiting,
    machine: &Machine,
    now: Time,
) -> (Vec<JobId>, BlockedCache) {
    let ScanConfig {
        greedy_any,
        backfill,
        profile_mode,
    } = config;
    if greedy_any {
        let picks = select_greedy_any_in(class, order, waiting, machine);
        let used: u32 = picks.iter().map(|&id| waiting.get(id).nodes).sum();
        return (
            picks,
            BlockedCache::GreedyAny {
                leftover: machine.free_in(class) - used,
            },
        );
    }
    match backfill {
        BackfillMode::None => {
            let picks = select_head_blocking_in(class, order, waiting, machine);
            let blocked = if picks.len() < waiting.len() {
                BlockedCache::HeadBlocked
            } else {
                let used: u32 = picks.iter().map(|&id| waiting.get(id).nodes).sum();
                BlockedCache::OpenList {
                    leftover: machine.free_in(class) - used,
                }
            };
            (picks, blocked)
        }
        BackfillMode::Easy => {
            let scan = match profile_mode {
                ProfileMode::Rebuild => scan_easy_in(class, order, waiting, machine, now),
                ProfileMode::Incremental => {
                    scan_easy_live_in(class, order, waiting, machine, now, scratch)
                }
            };
            (
                scan.picks,
                BlockedCache::Easy {
                    shadow: scan.shadow,
                    extra: scan.extra,
                    free: scan.free,
                },
            )
        }
        BackfillMode::Conservative => {
            let scan = match profile_mode {
                ProfileMode::Rebuild => {
                    scan_conservative_in(class, order, waiting.len(), waiting, machine, now)
                }
                ProfileMode::Incremental => scan_conservative_live_in(
                    class,
                    order,
                    waiting.len(),
                    waiting,
                    machine,
                    now,
                    scratch,
                ),
            };
            (
                scan.picks,
                BlockedCache::Conservative {
                    leftover: scan.leftover,
                },
            )
        }
    }
}

impl Scheduler for ListScheduler {
    fn name(&self) -> String {
        format!("{}+{}", self.policy.label(), self.backfill.label())
    }

    fn submit(&mut self, job: JobRequest, _now: Time) {
        // A first-time submission always carries the highest id seen so
        // far and joins the queue tail. A preempted job's remainder is
        // the exception: it re-enters with its *old* id, i.e. ahead of
        // later arrivals, and every cached blocked conclusion assumed
        // arrivals append at the tail — force a full scan for it.
        let mid_queue = self.waiting.max_id().is_some_and(|tail| job.id < tail);
        self.waiting.insert(job);
        // §5.4: the trigger is evaluated as jobs are submitted. `covered`
        // only ever holds still-waiting jobs (started ones are removed),
        // so the unordered count is a subtraction.
        if self.policy.is_dynamic() && !self.reorder_pending {
            let unordered = self.waiting.len() - self.covered.len();
            if self.trigger.fires(unordered, self.waiting.len()) {
                self.reorder_pending = true;
            }
        }
        if self.cache.is_some() {
            if self.reorder_pending || mid_queue {
                // A pending re-computation reorders the queue (and a
                // mid-queue re-entry reorders it implicitly), thereby
                // invalidating every blocked-state conclusion.
                self.invalidate_cache();
            } else {
                self.arrivals.push(job.id);
            }
        }
    }

    fn job_finished(&mut self, _id: JobId, _now: Time) {
        // Freed nodes enable starts the cache has ruled out.
        self.invalidate_cache();
    }

    fn cancel(&mut self, id: JobId, _now: Time) {
        if !self.waiting.contains(id) {
            return; // already started (or never submitted): nothing queued
        }
        self.waiting.remove(id);
        self.covered.remove(&id);
        // The blocked state may hinge on the retracted job (it could be
        // the blocked head, or hold a reservation in the conservative
        // calendar), and `arrivals` may still reference it — drop both.
        self.invalidate_cache();
    }

    fn capacity_changed(&mut self, _now: Time) {
        // A drain shrinks free capacity (cached leftovers overstate what
        // fits: overcommit risk), an undrain grows it (cached "blocked"
        // conclusions stall the queue) — either way the state is stale.
        self.invalidate_cache();
    }

    fn select_starts(&mut self, now: Time, machine: &Machine) -> Vec<JobId> {
        if machine.free_nodes() == 0 || self.waiting.is_empty() {
            return Vec::new();
        }

        if machine.class_count() > 1 {
            return self.select_starts_classed(now, machine);
        }

        if self.caching {
            if let Some(cache) = self.cache {
                let picks = self.incremental_starts(now, cache);
                if self.cache.is_some() {
                    for &id in &picks {
                        self.waiting.remove(id);
                        self.covered.remove(&id);
                    }
                    return picks;
                }
                // Cache invalidated inside: fall through to a full scan.
            }
        }

        // Static policies iterate the wait queue lazily (plain FCFS pays
        // O(started + 1) per decision); dynamic policies materialise their
        // priority order first.
        let config = ScanConfig {
            greedy_any: matches!(self.policy, OrderPolicy::GareyGraham),
            backfill: self.backfill,
            profile_mode: self.profile_mode,
        };
        let (picks, blocked) = if self.policy.is_dynamic() {
            let order = self.effective_order(machine.total_nodes());
            full_scan(
                ClassId(0),
                config,
                &mut self.scratch,
                order,
                &self.waiting,
                machine,
                now,
            )
        } else {
            full_scan(
                ClassId(0),
                config,
                &mut self.scratch,
                self.waiting.ids(),
                &self.waiting,
                machine,
                now,
            )
        };
        for &id in &picks {
            self.waiting.remove(id);
            self.covered.remove(&id);
        }
        if self.caching {
            // Every full scan is complete: no further job can start until
            // an arrival (judged incrementally against this state) or a
            // finish (which invalidates it). Caching here also makes the
            // engine's confirm-empty round O(1).
            self.cache = Some(blocked);
            self.arrivals.clear();
        }
        picks
    }

    fn queue_len(&self) -> usize {
        self.waiting.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smart::SmartVariant;
    use crate::view::WeightScheme;
    use jobsched_sim::simulate;
    use jobsched_workload::{JobBuilder, Workload};

    fn workload_convoy() -> Workload {
        // Classic convoy: a running job leaves 156 free nodes; a 200-node
        // job blocks the FCFS head; many small short jobs queue behind it.
        let mut jobs = vec![
            JobBuilder::new(JobId(0))
                .submit(0)
                .nodes(100)
                .requested(10_000)
                .runtime(10_000)
                .build(),
            JobBuilder::new(JobId(0))
                .submit(1)
                .nodes(200)
                .requested(10_000)
                .runtime(10_000)
                .build(),
        ];
        for i in 0..20 {
            jobs.push(
                JobBuilder::new(JobId(0))
                    .submit(2 + i)
                    .nodes(8)
                    .requested(100)
                    .runtime(100)
                    .build(),
            );
        }
        Workload::new("convoy", 256, jobs)
    }

    fn art(w: &Workload, s: &jobsched_sim::ScheduleRecord) -> f64 {
        w.jobs()
            .iter()
            .map(|j| (s.placement(j.id).unwrap().completion - j.submit) as f64)
            .sum::<f64>()
            / w.len() as f64
    }

    #[test]
    fn all_paper_algorithms_produce_valid_schedules() {
        let w = workload_convoy();
        let policies = vec![
            OrderPolicy::Fcfs,
            OrderPolicy::GareyGraham,
            OrderPolicy::smart(SmartVariant::Ffia, WeightScheme::Unweighted),
            OrderPolicy::smart(SmartVariant::Nfiw, WeightScheme::ProjectedArea),
            OrderPolicy::psrs(WeightScheme::Unweighted),
        ];
        for policy in policies {
            for mode in [
                BackfillMode::None,
                BackfillMode::Conservative,
                BackfillMode::Easy,
            ] {
                let mut s = ListScheduler::new(policy, mode);
                let out = simulate(&w, &mut s);
                assert!(
                    out.schedule.validate(&w).is_empty(),
                    "invalid schedule from {}",
                    ListScheduler::new(policy, mode).name()
                );
            }
        }
    }

    #[test]
    fn fcfs_convoy_blocks_small_jobs() {
        let w = workload_convoy();
        let plain = simulate(
            &w,
            &mut ListScheduler::new(OrderPolicy::Fcfs, BackfillMode::None),
        );
        // 156 nodes sit free behind the blocked 200-node head job, but
        // plain FCFS never skips it: the small jobs wait 10 000 s.
        let small_start = plain.schedule.placement(JobId(2)).unwrap().start;
        assert!(small_start >= 10_000, "FCFS must not skip the head");
    }

    #[test]
    fn easy_backfill_beats_plain_fcfs_on_convoy() {
        let w = workload_convoy();
        let plain = simulate(
            &w,
            &mut ListScheduler::new(OrderPolicy::Fcfs, BackfillMode::None),
        );
        let easy = simulate(
            &w,
            &mut ListScheduler::new(OrderPolicy::Fcfs, BackfillMode::Easy),
        );
        assert!(
            art(&w, &easy.schedule) < art(&w, &plain.schedule) / 2.0,
            "EASY {} vs plain {}",
            art(&w, &easy.schedule),
            art(&w, &plain.schedule)
        );
    }

    #[test]
    fn conservative_backfill_beats_plain_fcfs_on_convoy() {
        let w = workload_convoy();
        let plain = simulate(
            &w,
            &mut ListScheduler::new(OrderPolicy::Fcfs, BackfillMode::None),
        );
        let cons = simulate(
            &w,
            &mut ListScheduler::new(OrderPolicy::Fcfs, BackfillMode::Conservative),
        );
        assert!(art(&w, &cons.schedule) < art(&w, &plain.schedule) / 2.0);
    }

    #[test]
    fn garey_graham_ignores_backfill_mode() {
        let w = workload_convoy();
        let a = simulate(
            &w,
            &mut ListScheduler::new(OrderPolicy::GareyGraham, BackfillMode::None),
        );
        let b = simulate(
            &w,
            &mut ListScheduler::new(OrderPolicy::GareyGraham, BackfillMode::Easy),
        );
        for j in w.jobs() {
            assert_eq!(a.schedule.placement(j.id), b.schedule.placement(j.id));
        }
    }

    #[test]
    fn smart_prefers_small_jobs_unweighted() {
        let w = workload_convoy();
        let smart = simulate(
            &w,
            &mut ListScheduler::new(
                OrderPolicy::smart(SmartVariant::Ffia, WeightScheme::Unweighted),
                BackfillMode::Easy,
            ),
        );
        let fcfs = simulate(
            &w,
            &mut ListScheduler::new(OrderPolicy::Fcfs, BackfillMode::Easy),
        );
        assert!(art(&w, &smart.schedule) <= art(&w, &fcfs.schedule));
    }

    #[test]
    fn dynamic_policies_recompute_sparingly() {
        // A burst of same-instant submissions arrives as one event batch:
        // the trigger recomputes once for the batch, then the covered
        // order drains without further recomputation.
        let jobs: Vec<_> = (0..100)
            .map(|i| {
                JobBuilder::new(JobId(0))
                    .submit(0)
                    .nodes(64)
                    .requested(100 + i)
                    .runtime(100 + i)
                    .build()
            })
            .collect();
        let w = Workload::new("burst", 256, jobs);
        let mut s = ListScheduler::new(
            OrderPolicy::smart(SmartVariant::Ffia, WeightScheme::Unweighted),
            BackfillMode::None,
        );
        simulate(&w, &mut s);
        assert!(s.recomputations() >= 1);
        assert!(
            s.recomputations() <= 2,
            "trigger must throttle recomputations: {}",
            s.recomputations()
        );
    }

    #[test]
    fn cancel_of_blocked_head_unblocks_queue_immediately() {
        // Running job holds 6 of 10 nodes until 100. The 8-node head
        // blocks; a 4-node job queues behind it. Cancelling the head at 50
        // must start the 4-node job *at 50* — the blocked-state cache may
        // not survive the retraction (no finish event occurs at 50).
        let w = Workload::new(
            "t",
            10,
            vec![
                JobBuilder::new(JobId(0))
                    .submit(0)
                    .nodes(6)
                    .requested(100)
                    .runtime(100)
                    .build(),
                JobBuilder::new(JobId(0))
                    .submit(1)
                    .nodes(8)
                    .requested(100)
                    .runtime(100)
                    .build(),
                JobBuilder::new(JobId(0))
                    .submit(2)
                    .nodes(4)
                    .requested(100)
                    .runtime(100)
                    .build(),
            ],
        );
        let plan = jobsched_sim::FaultPlan {
            cancels: vec![jobsched_sim::CancelFault {
                id: JobId(1),
                at: 50,
            }],
            drains: vec![],
            ..Default::default()
        };
        for caching in [true, false] {
            let mut s =
                ListScheduler::new(OrderPolicy::Fcfs, BackfillMode::None).with_caching(caching);
            let out = jobsched_sim::simulate_with_faults(&w, &mut s, &plan);
            assert_eq!(out.schedule.placement(JobId(1)), None);
            assert_eq!(
                out.schedule.placement(JobId(2)).unwrap().start,
                50,
                "caching={caching}"
            );
        }
    }

    #[test]
    fn drain_invalidates_cached_leftover_capacity() {
        // Garey&Graham caches `leftover` free nodes. A drain at 10 takes
        // them away; the job arriving at 20 must NOT be admitted against
        // the stale leftover (that would overcommit → engine panic).
        let w = Workload::new(
            "t",
            10,
            vec![
                JobBuilder::new(JobId(0))
                    .submit(0)
                    .nodes(2)
                    .requested(500)
                    .runtime(500)
                    .build(),
                JobBuilder::new(JobId(0))
                    .submit(20)
                    .nodes(8)
                    .requested(50)
                    .runtime(50)
                    .build(),
            ],
        );
        let plan = jobsched_sim::FaultPlan {
            cancels: vec![],
            drains: vec![jobsched_sim::DrainFault::new(10, 8, 300)],
            ..Default::default()
        };
        let mut s = ListScheduler::new(OrderPolicy::GareyGraham, BackfillMode::None);
        let out = jobsched_sim::simulate_with_faults(&w, &mut s, &plan);
        // The 8-node job waits for the drained nodes to come back.
        assert_eq!(out.schedule.placement(JobId(1)).unwrap().start, 300);
    }

    #[test]
    fn undrain_wakes_cached_blocked_queue() {
        // All 10 nodes drained over [0+, 80): the head-blocking cache
        // concludes HeadBlocked at submit time. The undrain at 80 must
        // invalidate it so the job starts at 80 (no job event happens
        // then).
        let w = Workload::new(
            "t",
            10,
            vec![JobBuilder::new(JobId(0))
                .submit(10)
                .nodes(10)
                .requested(50)
                .runtime(50)
                .build()],
        );
        let plan = jobsched_sim::FaultPlan {
            cancels: vec![],
            drains: vec![jobsched_sim::DrainFault::new(5, 10, 80)],
            ..Default::default()
        };
        for mode in [
            BackfillMode::None,
            BackfillMode::Conservative,
            BackfillMode::Easy,
        ] {
            let mut s = ListScheduler::new(OrderPolicy::Fcfs, mode);
            let out = jobsched_sim::simulate_with_faults(&w, &mut s, &plan);
            assert_eq!(
                out.schedule.placement(JobId(0)).unwrap().start,
                80,
                "mode={mode:?}"
            );
        }
    }

    #[test]
    fn names_follow_paper_labels() {
        let s = ListScheduler::new(OrderPolicy::Fcfs, BackfillMode::Easy);
        assert_eq!(s.name(), "FCFS+EASY-Backfilling");
        let s = ListScheduler::new(
            OrderPolicy::smart(SmartVariant::Nfiw, WeightScheme::ProjectedArea),
            BackfillMode::Conservative,
        );
        assert_eq!(s.name(), "SMART-NFIW+Backfilling");
    }

    #[test]
    fn waiting_queue_bookkeeping() {
        let mut w = Waiting::new();
        let r = JobRequest {
            id: JobId(3),
            submit: 0,
            nodes: 1,
            class: ClassId(0),
            requested_time: 10,
            user: 0,
        };
        w.insert(r);
        assert!(w.contains(JobId(3)));
        assert_eq!(w.len(), 1);
        assert_eq!(w.remove(JobId(3)).id, JobId(3));
        assert!(w.is_empty());
    }

    #[test]
    #[should_panic(expected = "submitted twice")]
    fn duplicate_submission_panics() {
        let mut w = Waiting::new();
        let r = JobRequest {
            id: JobId(3),
            submit: 0,
            nodes: 1,
            class: ClassId(0),
            requested_time: 10,
            user: 0,
        };
        w.insert(r);
        w.insert(r);
    }
}
