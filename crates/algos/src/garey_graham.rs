//! Classical list scheduling by Garey & Graham [6] (§5.3).
//!
//! "The classical list scheduling algorithm … always starts the next job
//! for which enough resources are available. Ties can be broken in an
//! arbitrary fashion. The algorithm guarantees good theoretical bounds in
//! some on-line scenarios (unknown job execution time), it is easy to
//! implement and requires little computational effort. As in the case of
//! FCFS no knowledge of the job execution time is required. Application of
//! backfilling will be of no benefit for this method."
//!
//! We break ties in submission order. The selection logic is
//! [`select_greedy_any`]; the classical Graham bound (a greedy schedule's
//! makespan is < 2× the lower bound when jobs are available) is asserted
//! in the integration tests.

use crate::scheduler::Waiting;
use jobsched_sim::Machine;
use jobsched_workload::{ClassId, JobId};

/// Start *any* waiting job, in list order, for which enough resources are
/// available. Lazy over the order: stops once the machine is full.
///
/// Greedy-any needs only the *instantaneous* free-node count — it never
/// reasons about the future, so it reads the head of the machine's
/// incremental availability calendar ([`jobsched_sim::LiveProfile`])
/// rather than materialising a step function.
pub fn select_greedy_any(
    order: impl IntoIterator<Item = JobId>,
    waiting: &Waiting,
    machine: &Machine,
) -> Vec<JobId> {
    select_greedy_any_in(ClassId(0), order, waiting, machine)
}

/// [`select_greedy_any`] restricted to one node-class pool. The order
/// must contain only jobs resolved to `class`; on a single-class machine
/// `ClassId(0)` reproduces the whole-machine scan bit for bit.
pub fn select_greedy_any_in(
    class: ClassId,
    order: impl IntoIterator<Item = JobId>,
    waiting: &Waiting,
    machine: &Machine,
) -> Vec<JobId> {
    let mut free = machine.class_profile(class).free_nodes();
    debug_assert_eq!(free, machine.free_in(class));
    let mut out = Vec::new();
    for id in order {
        if free == 0 {
            break;
        }
        let job = waiting.get(id);
        if job.nodes <= free {
            free -= job.nodes;
            out.push(id);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use jobsched_sim::JobRequest;
    use jobsched_workload::Time;

    fn req(id: u32, nodes: u32, requested: Time) -> JobRequest {
        JobRequest {
            id: JobId(id),
            submit: 0,
            nodes,
            class: ClassId(0),
            requested_time: requested,
            user: 0,
        }
    }

    #[test]
    fn starts_everything_that_fits() {
        let m = Machine::new(10);
        let mut w = Waiting::new();
        for r in [req(0, 4, 10), req(1, 8, 10), req(2, 5, 10), req(3, 1, 10)] {
            w.insert(r);
        }
        let order = [JobId(0), JobId(1), JobId(2), JobId(3)];
        // 4 fits (6 left), 8 skipped, 5 fits (1 left), 1 fits (0 left).
        assert_eq!(
            select_greedy_any(order.iter().copied(), &w, &m),
            vec![JobId(0), JobId(2), JobId(3)]
        );
    }

    #[test]
    fn never_idles_a_feasible_machine() {
        // Greedy property: if any waiting job fits, something starts.
        let m = Machine::new(10);
        let mut w = Waiting::new();
        // Job 0 can never fit (invalid for machine); select just skips it.
        w.insert(req(0, 11, 10));
        w.insert(req(1, 10, 10));
        let picks = select_greedy_any([JobId(0), JobId(1)], &w, &m);
        assert_eq!(picks, vec![JobId(1)]);
    }

    #[test]
    fn stops_scanning_when_full() {
        let m = Machine::new(4);
        let mut w = Waiting::new();
        for i in 0..100 {
            w.insert(req(i, 4, 10));
        }
        let order: Vec<JobId> = (0..100).map(JobId).collect();
        assert_eq!(
            select_greedy_any(order.iter().copied(), &w, &m),
            vec![JobId(0)]
        );
    }
}
