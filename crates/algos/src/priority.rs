//! The priority-policy scheduler family: one composable scheduler
//! parameterized by a scoring function over (wait, estimate, width).
//!
//! This is the family the paper's evaluation (13 combos) leaves out and
//! the batch-scheduling literature sweeps routinely: SJF/LJF,
//! smallest/largest-first, the wait-fairness heuristics WFP/WFP³ and
//! UNICEF, and machine-tuned linear "F" combinations (Carastan-Santos &
//! de Camargo, SC'17). Each [`ScoreFn`] maps a waiting job to a scalar
//! score; **smaller score = higher priority**. The scheduler re-ranks
//! the queue on every decision (wait-dependent scores drift between
//! events) and feeds the ranked order through exactly the same selection
//! machinery as [`ListScheduler`](crate::scheduler::ListScheduler):
//! head-blocking greedy, optionally upgraded with conservative or EASY
//! backfilling, in both profile modes.
//!
//! # Tie-breaking (normative)
//!
//! Jobs are ordered by `(score, JobId)` ascending, comparing scores with
//! [`f64::total_cmp`]. Ties on the score — common for width- or
//! estimate-keyed functions on bursty queues — always fall back to the
//! submission order (ids ascend with submit time in every driver in this
//! repo), so the ranking is a total order that does not depend on queue
//! iteration order. The oracle's naive re-implementations and the
//! property tests pin this rule.
//!
//! # No blocked-state cache
//!
//! `ListScheduler`'s incremental blocked-state cache is sound only
//! because its order between two queue events is static. Wait-dependent
//! scores (WFP, UNICEF, …) reorder the queue as time passes with *no*
//! intervening event, so a cached "nothing can start" conclusion could
//! hold back a job that meanwhile overtook the blocked head. The
//! priority family therefore performs a full scan per decision round.

use crate::backfill::BackfillMode;
use crate::scheduler::{full_scan, ProfileMode, ScanConfig, Waiting};
use jobsched_sim::{JobRequest, Machine, Profile, Scheduler};
use jobsched_workload::{ClassId, JobId, Time};

/// A scoring rule over `(wait, runtime estimate, width)`.
///
/// Formulas follow the deep-batch-scheduler exemplar (SNIPPETS.md) and
/// SC'17, adapted to this repo's conventions: the estimate is clamped to
/// ≥ 1 (mirroring [`crate::view::JobView::of`]), so no rule can divide
/// by zero, and UNICEF's `log2(width)` becomes `log2(width + 1)` so a
/// one-node job (log2(1) = 0) cannot blow up the quotient. Every score
/// is finite for all admissible inputs (wait, estimate ≤ 2⁶³, width ≤
/// 2³²) — the property tests sweep the extremes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ScoreFn {
    /// First-come-first-serve: score `-wait` (longest-waiting first —
    /// submission order). Exists to pin the family bit-identical to the
    /// legacy FCFS `ListScheduler`.
    Fcfs,
    /// Shortest job first: score `estimate`.
    Sjf,
    /// Longest job first: score `-estimate`.
    Ljf,
    /// Narrowest job first: score `width`.
    SmallestFirst,
    /// Widest job first: score `-width`.
    LargestFirst,
    /// WFP: score `-(wait/estimate) · width` — fairness-weighted wide
    /// jobs overtake as they wait.
    Wfp,
    /// WFP³: score `-(wait/estimate)³ · width` — the cubed variant
    /// escalates long-waiters much faster.
    Wfp3,
    /// UNICEF: score `-wait / (log2(width + 1) · estimate)` — favors
    /// short narrow jobs, wait-compensated.
    Unicef,
    /// SC'17 F1-style linear combination:
    /// `log10(estimate) · width − 870 · log10(wait + 1)`.
    F1,
    /// SC'17 F2-style nonlinear combination:
    /// `sqrt(estimate) · width − 25600 · log10(wait + 1)`.
    F2,
}

impl ScoreFn {
    /// Every scoring rule, in display order. 9 rules beyond the FCFS
    /// pin; each composes with all three backfill modes.
    pub const ALL: [ScoreFn; 10] = [
        ScoreFn::Fcfs,
        ScoreFn::Sjf,
        ScoreFn::Ljf,
        ScoreFn::SmallestFirst,
        ScoreFn::LargestFirst,
        ScoreFn::Wfp,
        ScoreFn::Wfp3,
        ScoreFn::Unicef,
        ScoreFn::F1,
        ScoreFn::F2,
    ];

    /// Display label ("P-FCFS" distinguishes the pinned-identical
    /// priority encoding from the legacy FCFS row).
    pub fn label(&self) -> &'static str {
        match self {
            ScoreFn::Fcfs => "P-FCFS",
            ScoreFn::Sjf => "SJF",
            ScoreFn::Ljf => "LJF",
            ScoreFn::SmallestFirst => "Smallest-First",
            ScoreFn::LargestFirst => "Largest-First",
            ScoreFn::Wfp => "WFP",
            ScoreFn::Wfp3 => "WFP3",
            ScoreFn::Unicef => "UNICEF",
            ScoreFn::F1 => "F1",
            ScoreFn::F2 => "F2",
        }
    }

    /// Stable machine token used by sweep cache keys, scenario files and
    /// the serve protocol. Fixed forever once a record/corpus ships.
    pub fn tag(&self) -> &'static str {
        match self {
            ScoreFn::Fcfs => "p-fcfs",
            ScoreFn::Sjf => "sjf",
            ScoreFn::Ljf => "ljf",
            ScoreFn::SmallestFirst => "smallest",
            ScoreFn::LargestFirst => "largest",
            ScoreFn::Wfp => "wfp",
            ScoreFn::Wfp3 => "wfp3",
            ScoreFn::Unicef => "unicef",
            ScoreFn::F1 => "f1",
            ScoreFn::F2 => "f2",
        }
    }

    /// Inverse of [`ScoreFn::tag`].
    pub fn from_tag(tag: &str) -> Option<ScoreFn> {
        ScoreFn::ALL.into_iter().find(|s| s.tag() == tag)
    }

    /// Score a waiting job at one decision instant. Smaller = starts
    /// earlier. `estimate` is clamped to ≥ 1 before use.
    pub fn score(&self, wait: Time, estimate: Time, width: u32) -> f64 {
        let wait = wait as f64;
        let est = estimate.max(1) as f64;
        let width = width as f64;
        match self {
            ScoreFn::Fcfs => -wait,
            ScoreFn::Sjf => est,
            ScoreFn::Ljf => -est,
            ScoreFn::SmallestFirst => width,
            ScoreFn::LargestFirst => -width,
            ScoreFn::Wfp => -(wait / est) * width,
            ScoreFn::Wfp3 => {
                let r = wait / est;
                -(r * r * r) * width
            }
            ScoreFn::Unicef => -wait / ((width + 1.0).log2() * est),
            ScoreFn::F1 => est.log10() * width - 870.0 * (wait + 1.0).log10(),
            ScoreFn::F2 => est.sqrt() * width - 25_600.0 * (wait + 1.0).log10(),
        }
    }
}

/// Rank jobs by `(score at now, id)` ascending — the normative ordering
/// of the priority family, shared by the scheduler, the oracle's naive
/// differential and the property tests. `inverted` flips the score sign
/// (oracle impostor polarity only). Wait is `now − submit`, saturating:
/// a driver may deliver the submission batch at an instant its clock
/// still reports as the submit time.
pub fn rank<'a, I>(score: ScoreFn, now: Time, jobs: I, inverted: bool) -> Vec<JobId>
where
    I: IntoIterator<Item = &'a JobRequest>,
{
    let mut keyed: Vec<(f64, JobId)> = jobs
        .into_iter()
        .map(|r| {
            let wait = now.saturating_sub(r.submit);
            let s = score.score(wait, r.requested_time, r.nodes);
            (if inverted { -s } else { s }, r.id)
        })
        .collect();
    keyed.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    keyed.into_iter().map(|(_, id)| id).collect()
}

/// A complete priority algorithm: scoring function + backfilling mode.
///
/// Composes with every [`BackfillMode`] and both [`ProfileMode`]s; on a
/// multi-class machine the ranked order is partitioned per node-class
/// pool exactly like `ListScheduler`. `ScoreFn::Fcfs` is pinned
/// bit-identical to the legacy FCFS `ListScheduler` by
/// `crates/algos/tests/priority_fcfs_identity.rs`.
#[derive(Debug)]
pub struct PriorityScheduler {
    score: ScoreFn,
    backfill: BackfillMode,
    profile_mode: ProfileMode,
    waiting: Waiting,
    /// Reusable step-function buffer for [`ProfileMode::Incremental`].
    scratch: Profile,
    /// Rank with the score sign flipped — the deliberately broken
    /// impostor the oracle's dual-polarity corpus must catch. Never set
    /// outside oracle self-tests.
    inverted: bool,
}

impl PriorityScheduler {
    /// Build a scheduler from scoring function and backfill mode.
    pub fn new(score: ScoreFn, backfill: BackfillMode) -> Self {
        PriorityScheduler {
            score,
            backfill,
            profile_mode: ProfileMode::default(),
            waiting: Waiting::new(),
            scratch: Profile::empty(1, 0),
            inverted: false,
        }
    }

    /// Choose how the backfilling scans obtain the availability profile
    /// (decisions are bit-identical across modes; differential tests
    /// enforce it).
    pub fn with_profile_mode(mut self, mode: ProfileMode) -> Self {
        self.profile_mode = mode;
        self
    }

    /// Flip the ranking order — the lying scheduler used to prove the
    /// oracle's differential checks can catch a broken ordering. Not a
    /// real policy.
    pub fn with_inverted_order(mut self, inverted: bool) -> Self {
        self.inverted = inverted;
        self
    }

    /// The scoring function.
    pub fn score_fn(&self) -> ScoreFn {
        self.score
    }

    /// The backfilling mode.
    pub fn backfill(&self) -> BackfillMode {
        self.backfill
    }

    /// How the backfilling scans obtain the availability profile.
    pub fn profile_mode(&self) -> ProfileMode {
        self.profile_mode
    }
}

impl Scheduler for PriorityScheduler {
    fn name(&self) -> String {
        format!("{}+{}", self.score.label(), self.backfill.label())
    }

    fn submit(&mut self, job: JobRequest, _now: Time) {
        self.waiting.insert(job);
    }

    fn cancel(&mut self, id: JobId, _now: Time) {
        if self.waiting.contains(id) {
            self.waiting.remove(id);
        }
    }

    fn select_starts(&mut self, now: Time, machine: &Machine) -> Vec<JobId> {
        if machine.free_nodes() == 0 || self.waiting.is_empty() {
            return Vec::new();
        }
        let config = ScanConfig {
            greedy_any: false,
            backfill: self.backfill,
            profile_mode: self.profile_mode,
        };
        let order = rank(self.score, now, self.waiting.requests(), self.inverted);
        let mut picks = Vec::new();
        if machine.class_count() > 1 {
            for c in 0..machine.class_count() {
                let class = ClassId(c as u8);
                if machine.free_in(class) == 0 {
                    continue;
                }
                // Classes partition the ranked queue: a job picked for an
                // earlier pool never appears in a later pool's order.
                let class_order = order
                    .iter()
                    .copied()
                    .filter(|&id| self.waiting.get(id).class == class);
                let (p, _) = full_scan(
                    class,
                    config,
                    &mut self.scratch,
                    class_order,
                    &self.waiting,
                    machine,
                    now,
                );
                picks.extend(p);
            }
        } else {
            let (p, _) = full_scan(
                ClassId(0),
                config,
                &mut self.scratch,
                order,
                &self.waiting,
                machine,
                now,
            );
            picks = p;
        }
        for &id in &picks {
            self.waiting.remove(id);
        }
        picks
    }

    fn queue_len(&self) -> usize {
        self.waiting.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jobsched_sim::simulate;
    use jobsched_workload::{JobBuilder, Workload};

    fn req(id: u32, submit: Time, nodes: u32, requested: Time) -> JobRequest {
        JobRequest {
            id: JobId(id),
            submit,
            nodes,
            class: ClassId(0),
            requested_time: requested,
            user: 0,
        }
    }

    #[test]
    fn tags_and_labels_are_unique() {
        let tags: std::collections::BTreeSet<_> = ScoreFn::ALL.iter().map(|s| s.tag()).collect();
        assert_eq!(tags.len(), ScoreFn::ALL.len());
        let labels: std::collections::BTreeSet<_> =
            ScoreFn::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), ScoreFn::ALL.len());
        for s in ScoreFn::ALL {
            assert_eq!(ScoreFn::from_tag(s.tag()), Some(s));
        }
    }

    #[test]
    fn sjf_ranks_short_before_long() {
        let a = req(0, 0, 4, 1_000);
        let b = req(1, 0, 4, 10);
        assert_eq!(
            rank(ScoreFn::Sjf, 50, [&a, &b], false),
            vec![JobId(1), JobId(0)]
        );
        assert_eq!(
            rank(ScoreFn::Ljf, 50, [&a, &b], false),
            vec![JobId(0), JobId(1)]
        );
    }

    #[test]
    fn wfp_promotes_long_waiters() {
        // Same width/estimate: the older submission has more wait and
        // must come first; inverting flips it.
        let a = req(0, 0, 4, 100);
        let b = req(1, 90, 4, 100);
        assert_eq!(
            rank(ScoreFn::Wfp, 100, [&a, &b], false),
            vec![JobId(0), JobId(1)]
        );
        assert_eq!(
            rank(ScoreFn::Wfp, 100, [&a, &b], true),
            vec![JobId(1), JobId(0)]
        );
    }

    #[test]
    fn score_ties_break_by_id() {
        // Identical jobs submitted at the same instant: ascending id.
        let a = req(7, 5, 4, 100);
        let b = req(3, 5, 4, 100);
        assert_eq!(
            rank(ScoreFn::SmallestFirst, 10, [&a, &b], false),
            vec![JobId(3), JobId(7)]
        );
    }

    #[test]
    fn every_combo_produces_a_valid_schedule() {
        let mut jobs = vec![
            JobBuilder::new(JobId(0))
                .submit(0)
                .nodes(100)
                .requested(10_000)
                .runtime(10_000)
                .build(),
            JobBuilder::new(JobId(0))
                .submit(1)
                .nodes(200)
                .requested(10_000)
                .runtime(10_000)
                .build(),
        ];
        for i in 0..20 {
            jobs.push(
                JobBuilder::new(JobId(0))
                    .submit(2 + i)
                    .nodes(8)
                    .requested(100)
                    .runtime(100)
                    .build(),
            );
        }
        let w = Workload::new("convoy", 256, jobs);
        for score in ScoreFn::ALL {
            for backfill in [
                BackfillMode::None,
                BackfillMode::Conservative,
                BackfillMode::Easy,
            ] {
                for mode in [ProfileMode::Rebuild, ProfileMode::Incremental] {
                    let mut s = PriorityScheduler::new(score, backfill).with_profile_mode(mode);
                    let out = simulate(&w, &mut s);
                    assert!(
                        out.schedule.validate(&w).is_empty(),
                        "invalid schedule from {}",
                        PriorityScheduler::new(score, backfill).name()
                    );
                }
            }
        }
    }

    #[test]
    fn sjf_beats_fcfs_on_convoy_tail() {
        // One same-instant burst: FCFS (id order) starts the 200-node
        // long head first and blocks the shorts behind it; SJF reorders
        // the shorts ahead, so their mean response time drops.
        let mut jobs = vec![JobBuilder::new(JobId(0))
            .submit(0)
            .nodes(200)
            .requested(10_000)
            .runtime(10_000)
            .build()];
        for _ in 0..20 {
            jobs.push(
                JobBuilder::new(JobId(0))
                    .submit(0)
                    .nodes(100)
                    .requested(100)
                    .runtime(100)
                    .build(),
            );
        }
        let w = Workload::new("tail", 256, jobs);
        let art = |s: &jobsched_sim::ScheduleRecord| {
            w.jobs()
                .iter()
                .map(|j| (s.placement(j.id).unwrap().completion - j.submit) as f64)
                .sum::<f64>()
                / w.len() as f64
        };
        let sjf = simulate(
            &w,
            &mut PriorityScheduler::new(ScoreFn::Sjf, BackfillMode::None),
        );
        let fcfs = simulate(
            &w,
            &mut PriorityScheduler::new(ScoreFn::Fcfs, BackfillMode::None),
        );
        assert!(art(&sjf.schedule) < art(&fcfs.schedule));
    }

    #[test]
    fn names_compose_score_and_backfill() {
        let s = PriorityScheduler::new(ScoreFn::Wfp3, BackfillMode::Easy);
        assert_eq!(s.name(), "WFP3+EASY-Backfilling");
        let s = PriorityScheduler::new(ScoreFn::Unicef, BackfillMode::Conservative);
        assert_eq!(s.name(), "UNICEF+Backfilling");
    }
}
