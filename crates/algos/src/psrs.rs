//! PSRS — Preemptive Smith-Ratio Scheduling (Schwiegelshohn [13], §5.5)
//! and its conversion to a non-preemptive job order.
//!
//! PSRS proper generates *preemptive* schedules:
//!
//! 1. "All jobs are ordered by their modified Smith ratio" — weight
//!    divided by (required nodes × execution time), largest first.
//! 2. "A greedy list schedule is applied for all jobs requiring at most
//!    50 % of the machine nodes. If a job needs more than half of all
//!    nodes and has been waiting for some time, then all running jobs are
//!    preempted and the parallel job is executed. After the completion of
//!    the parallel job, the execution of the preempted jobs is resumed."
//!
//! The target machine supports no time sharing, so §5.5 converts the
//! preemptive schedule into a job *order*:
//!
//! 1. Two geometric sequences of time instances (factor 2, different
//!    offsets) define bins — one for the preempting "wide" jobs, one for
//!    the "small" jobs.
//! 2. Jobs are assigned to bins by their completion time in the
//!    preemptive schedule; within a bin the Smith-ratio order is kept.
//! 3. The final order alternates bins from the two sequences, starting
//!    with the small-job sequence.
//!
//! Under-specified details and our documented choices (DESIGN.md §2):
//! "waiting for some time" = `wide_wait_factor ×` the wide job's own
//! execution time (default 1.0); the sequence offsets are `2^k` (small)
//! and `1.5·2^k` (wide) seconds.

use crate::view::JobView;
use jobsched_sim::Segment;
use jobsched_workload::{JobId, Time};

/// Tunable parameters of the PSRS adaptation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PsrsParams {
    /// A wide job preempts once it has waited `factor × execution time`.
    pub wide_wait_factor: f64,
}

impl Default for PsrsParams {
    fn default() -> Self {
        PsrsParams {
            wide_wait_factor: 1.0,
        }
    }
}

/// Whether a job is "wide" (needs more than half the machine).
#[inline]
pub fn is_wide(nodes: u32, machine_nodes: u32) -> bool {
    2 * nodes > machine_nodes
}

/// One job's allocation in the PSRS preemptive schedule: its segment
/// union plus the completion/wide projection §5.5 bins on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PsrsAllocation {
    /// The job.
    pub id: JobId,
    /// Whether it needs more than half the machine.
    pub wide: bool,
    /// Completion instant (end of the last segment).
    pub completion: Time,
    /// Disjoint execution spans; more than one iff the job was
    /// preempted by a wide job and later resumed.
    pub segments: Vec<Segment>,
}

/// The full PSRS *preemptive* schedule with every job available at
/// time 0 (the offline setting of [13]), one segment union per job in
/// completion order.
///
/// This is the schedule §5.5 only ever observes through its completion
/// times ([`preemptive_completions`]); exposing the spans makes the
/// intermediate auditable with [`jobsched_sim::check_segments`] —
/// machine capacity, per-job self-overlap and charged-time checks that
/// the completion projection cannot express.
pub fn preemptive_schedule(
    jobs: &[JobView],
    machine_nodes: u32,
    params: PsrsParams,
) -> Vec<PsrsAllocation> {
    let mut order: Vec<JobView> = jobs.to_vec();
    order.sort_by(|a, b| {
        b.smith_ratio()
            .partial_cmp(&a.smith_ratio())
            .expect("finite ratios")
            .then(a.id.cmp(&b.id))
    });

    // Waiting jobs, Smith order. `remaining` tracks preempted work;
    // `span_start`/`segments` its union of execution spans.
    struct Running {
        job: JobView,
        remaining: Time,
        span_start: Time,
        segments: Vec<Segment>,
    }
    impl Running {
        /// Close the open span at `end`; a zero-length span (started
        /// and preempted in the same instant) leaves no trace.
        fn close_span(&mut self, end: Time) {
            if end > self.span_start {
                self.segments
                    .push(Segment::new(self.span_start, end, self.job.nodes));
            }
        }
        fn retire(mut self, t: Time, machine_nodes: u32) -> PsrsAllocation {
            self.close_span(t);
            PsrsAllocation {
                id: self.job.id,
                wide: is_wide(self.job.nodes, machine_nodes),
                completion: t,
                segments: self.segments,
            }
        }
    }
    let mut waiting: std::collections::VecDeque<JobView> = order.iter().copied().collect();
    let mut running: Vec<Running> = Vec::new();
    let mut free = machine_nodes;
    let mut t: Time = 0;
    let mut done: Vec<PsrsAllocation> = Vec::new();
    // The head wide job becomes "eligible" when it reaches the front of
    // the wide backlog; its preemption deadline counts from there.
    let mut wide_eligible_since: Time = 0;

    while !waiting.is_empty() || !running.is_empty() {
        // Greedy list start in Smith order ("a greedy list schedule is
        // applied", §5.5 — the same head-blocking greedy as FCFS, so that
        // completion order tracks the Smith order instead of rewarding
        // narrow jobs that happen to fit holes). Wide jobs block here and
        // are handled by the preemption rule below.
        while let Some(head) = waiting.front() {
            if head.nodes > free {
                break;
            }
            let job = waiting.pop_front().expect("peeked");
            free -= job.nodes;
            running.push(Running {
                job,
                remaining: job.time.max(1),
                span_start: t,
                segments: Vec::new(),
            });
        }

        // Next completion event.
        let next_completion = running.iter().map(|r| t + r.remaining).min();

        // Preemption deadline of the highest-priority waiting wide job
        // (one that could not be started above). Clamped to `t`: the
        // eligibility clock only advances on preemptive runs, so when
        // the previous head wide started *greedily* instead, its
        // successor's patience may already have lapsed — it preempts
        // now. (Unclamped, the schedule would run the wide job in the
        // past, before jobs that already completed.)
        let wide_deadline = waiting
            .iter()
            .find(|j| is_wide(j.nodes, machine_nodes))
            .map(|j| {
                (wide_eligible_since
                    + (params.wide_wait_factor * j.time as f64).ceil().max(1.0) as Time)
                    .max(t)
            });

        match (next_completion, wide_deadline) {
            (None, None) => break,
            (Some(tc), wd) if wd.is_none_or(|td| tc <= td) => {
                // Advance to the completion; retire all jobs ending then.
                let elapsed = tc - t;
                t = tc;
                let mut still: Vec<Running> = Vec::with_capacity(running.len());
                for mut r in running {
                    r.remaining -= elapsed;
                    if r.remaining == 0 {
                        free += r.job.nodes;
                        done.push(r.retire(t, machine_nodes));
                    } else {
                        still.push(r);
                    }
                }
                running = still;
            }
            (Some(_), None) => unreachable!("guard above covers wd = None"),
            (tc, Some(td)) => {
                // The wide job's patience runs out at td: advance running
                // work to td, preempt everything, run the wide job alone.
                debug_assert!(tc.is_none_or(|c| c > td));
                debug_assert!(td >= t);
                let elapsed = td - t;
                t = td;
                for r in &mut running {
                    r.remaining -= elapsed.min(r.remaining);
                }
                // Retire anything that happened to end exactly at td;
                // everything else is suspended (its span closes at td).
                let mut paused: Vec<Running> = Vec::with_capacity(running.len());
                for mut r in running {
                    if r.remaining == 0 {
                        free += r.job.nodes;
                        done.push(r.retire(t, machine_nodes));
                    } else {
                        r.close_span(t);
                        paused.push(r);
                    }
                }
                let wide_idx = waiting
                    .iter()
                    .position(|j| is_wide(j.nodes, machine_nodes))
                    .expect("deadline implies a waiting wide job");
                let wide = waiting.remove(wide_idx).expect("index checked");
                let wide_end = t + wide.time.max(1);
                done.push(PsrsAllocation {
                    id: wide.id,
                    wide: true,
                    completion: wide_end,
                    segments: vec![Segment::new(t, wide_end, wide.nodes)],
                });
                t = wide_end;
                wide_eligible_since = t;
                // Resume the preempted jobs (they fit together: they were
                // running together before); their next span opens now.
                for r in &mut paused {
                    r.span_start = t;
                }
                running = paused;
            }
        }
    }
    done
}

/// Completion times of all jobs in the PSRS *preemptive* schedule —
/// the projection of [`preemptive_schedule`] that §5.5's geometric
/// binning consumes.
///
/// Returns `(id, completion, wide)` tuples in completion order.
pub fn preemptive_completions(
    jobs: &[JobView],
    machine_nodes: u32,
    params: PsrsParams,
) -> Vec<(JobId, Time, bool)> {
    preemptive_schedule(jobs, machine_nodes, params)
        .into_iter()
        .map(|a| (a.id, a.completion, a.wide))
        .collect()
}

/// Bin index in the small-job sequence: boundaries `2^k` seconds — the
/// smallest k with `2^k ≥ completion`.
fn small_bin(completion: Time) -> u32 {
    let c = completion.max(1);
    let mut k = 0u32;
    while (1u64 << k) < c {
        k += 1;
    }
    k
}

/// Bin index in the wide-job sequence: boundaries `1.5·2^k` seconds.
fn wide_bin(completion: Time) -> u32 {
    let c = completion.max(1) as f64;
    let mut k = 0u32;
    while 1.5 * ((1u64 << k) as f64) < c {
        k += 1;
    }
    k
}

/// Full §5.5 pipeline: preemptive PSRS schedule → geometric binning →
/// alternating merge (small sequence first) → non-preemptive job order.
pub fn psrs_order(jobs: &[JobView], machine_nodes: u32, params: PsrsParams) -> Vec<JobId> {
    if jobs.is_empty() {
        return Vec::new();
    }
    let completions = preemptive_completions(jobs, machine_nodes, params);
    debug_assert_eq!(completions.len(), jobs.len());

    // Smith-ratio rank for the in-bin order.
    let mut rank: std::collections::BTreeMap<JobId, usize> = std::collections::BTreeMap::new();
    let mut by_ratio: Vec<&JobView> = jobs.iter().collect();
    by_ratio.sort_by(|a, b| {
        b.smith_ratio()
            .partial_cmp(&a.smith_ratio())
            .expect("finite ratios")
            .then(a.id.cmp(&b.id))
    });
    for (i, j) in by_ratio.iter().enumerate() {
        rank.insert(j.id, i);
    }

    let mut small_bins: std::collections::BTreeMap<u32, Vec<JobId>> = Default::default();
    let mut wide_bins: std::collections::BTreeMap<u32, Vec<JobId>> = Default::default();
    for (id, completion, wide) in completions {
        if wide {
            wide_bins.entry(wide_bin(completion)).or_default().push(id);
        } else {
            small_bins
                .entry(small_bin(completion))
                .or_default()
                .push(id);
        }
    }
    for bin in small_bins.values_mut().chain(wide_bins.values_mut()) {
        bin.sort_by_key(|id| rank[id]);
    }

    // Alternate: small bin k, wide bin k, small bin k+1, ...
    let max_bin = small_bins
        .keys()
        .chain(wide_bins.keys())
        .copied()
        .max()
        .unwrap_or(0);
    let mut out = Vec::with_capacity(jobs.len());
    for k in 0..=max_bin {
        if let Some(bin) = small_bins.get(&k) {
            out.extend_from_slice(bin);
        }
        if let Some(bin) = wide_bins.get(&k) {
            out.extend_from_slice(bin);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(id: u32, nodes: u32, time: Time, weight: f64) -> JobView {
        JobView {
            id: JobId(id),
            nodes,
            time,
            weight,
        }
    }

    #[test]
    fn wide_predicate() {
        assert!(!is_wide(128, 256));
        assert!(is_wide(129, 256));
        assert!(is_wide(256, 256));
    }

    #[test]
    fn bins_are_geometric() {
        assert_eq!(small_bin(1), 0);
        assert_eq!(small_bin(2), 1);
        assert_eq!(small_bin(3), 2);
        assert_eq!(small_bin(4), 2);
        assert_eq!(small_bin(5), 3);
        assert_eq!(wide_bin(1), 0);
        assert_eq!(wide_bin(2), 1);
        assert_eq!(wide_bin(3), 1);
        assert_eq!(wide_bin(4), 2);
        assert_eq!(wide_bin(6), 2);
        assert_eq!(wide_bin(7), 3);
    }

    #[test]
    fn small_jobs_only_greedy_schedule() {
        // Two 4-node 10 s jobs on 8 nodes run together; a third waits.
        let jobs = vec![
            view(0, 4, 10, 1.0),
            view(1, 4, 10, 1.0),
            view(2, 4, 10, 1.0),
        ];
        let c = preemptive_completions(&jobs, 8, PsrsParams::default());
        let mut by_id: Vec<(u32, Time)> = c.iter().map(|&(id, t, _)| (id.0, t)).collect();
        by_id.sort_unstable();
        assert_eq!(by_id, vec![(0, 10), (1, 10), (2, 20)]);
    }

    #[test]
    fn smith_order_prefers_high_ratio() {
        // j1 has a far better ratio (tiny area) and must complete first
        // even though j0 has a lower id.
        let jobs = vec![view(0, 8, 100, 1.0), view(1, 8, 1, 1.0)];
        let c = preemptive_completions(&jobs, 8, PsrsParams::default());
        assert_eq!(c[0].0, JobId(1));
        assert_eq!(c[0].1, 1);
    }

    #[test]
    fn wide_job_preempts_after_patience() {
        // Machine 8. A stream of small jobs keeps 6 nodes busy; the wide
        // job (7 nodes, time 10) cannot start. With factor 1.0 it preempts
        // at t = 10 and completes at 20; the preempted small job resumes
        // and finishes late.
        let jobs = vec![
            view(0, 6, 100, 10.0), // high weight → runs first
            view(1, 7, 10, 0.1),   // wide, poor ratio
        ];
        let c = preemptive_completions(&jobs, 8, PsrsParams::default());
        let wide = c.iter().find(|x| x.0 == JobId(1)).unwrap();
        assert_eq!(wide.1, 20, "wide preempts at 10, runs 10");
        assert!(wide.2);
        let small = c.iter().find(|x| x.0 == JobId(0)).unwrap();
        // 10 s of work done before preemption, 90 after resume at t=20.
        assert_eq!(small.1, 110);
    }

    #[test]
    fn wide_job_starts_immediately_on_idle_machine() {
        let jobs = vec![view(0, 7, 10, 1.0)];
        let c = preemptive_completions(&jobs, 8, PsrsParams::default());
        assert_eq!(c, vec![(JobId(0), 10, true)]);
    }

    #[test]
    fn patience_scales_with_factor() {
        let jobs = vec![view(0, 6, 100, 10.0), view(1, 7, 10, 0.1)];
        let c = preemptive_completions(
            &jobs,
            8,
            PsrsParams {
                wide_wait_factor: 3.0,
            },
        );
        let wide = c.iter().find(|x| x.0 == JobId(1)).unwrap();
        assert_eq!(wide.1, 40, "preempts at 30, runs 10");
    }

    #[test]
    fn preemptive_schedule_emits_the_documented_segments() {
        // The wide_job_preempts_after_patience scenario, span by span:
        // the small job runs [0,10), is suspended for the wide job's
        // solo run [10,20), and resumes [20,110).
        let jobs = vec![view(0, 6, 100, 10.0), view(1, 7, 10, 0.1)];
        let alloc = preemptive_schedule(&jobs, 8, PsrsParams::default());
        let small = alloc.iter().find(|a| a.id == JobId(0)).unwrap();
        assert_eq!(
            small.segments,
            vec![Segment::new(0, 10, 6), Segment::new(20, 110, 6)]
        );
        assert_eq!(small.completion, 110);
        let wide = alloc.iter().find(|a| a.id == JobId(1)).unwrap();
        assert_eq!(wide.segments, vec![Segment::new(10, 20, 7)]);
        assert!(wide.wide);
    }

    #[test]
    fn job_preempted_at_its_start_instant_leaves_no_zero_span() {
        // Two small jobs free the machine at t=10; B(3 nodes) starts
        // there — and the wide job's patience lapses in the same
        // instant, so B is suspended before receiving any cycles. Its
        // union must hold only the real span after the wide run, not a
        // [10,10) stub.
        let jobs = vec![
            view(0, 4, 10, 10.0),
            view(1, 2, 10, 8.0),
            view(2, 3, 3, 0.03),
            view(3, 7, 10, 0.1),
        ];
        let alloc = preemptive_schedule(&jobs, 8, PsrsParams::default());
        let b = alloc.iter().find(|a| a.id == JobId(2)).unwrap();
        assert_eq!(b.segments, vec![Segment::new(20, 23, 3)]);
        let wide = alloc.iter().find(|a| a.id == JobId(3)).unwrap();
        assert_eq!(wide.segments, vec![Segment::new(10, 20, 7)]);
    }

    #[test]
    fn lapsed_patience_preempts_now_not_in_the_past() {
        // The eligibility clock only advances on preemptive runs. Here
        // W1 starts *greedily* at t=30, leaving W2's deadline computed
        // from wide_eligible_since = 0: already lapsed. W2 must preempt
        // at t=30 — before the clamp it ran "at" t=5, completing before
        // jobs that had already finished.
        let jobs = vec![
            view(0, 2, 30, 10.0), // runs [0,30)
            view(1, 7, 50, 0.2),  // W1: blocked, starts greedily at 30
            view(2, 7, 5, 0.01),  // W2: patience 5, lapsed long before
        ];
        let alloc = preemptive_schedule(&jobs, 8, PsrsParams::default());
        let a = alloc.iter().find(|x| x.id == JobId(0)).unwrap();
        assert_eq!(a.segments, vec![Segment::new(0, 30, 2)]);
        // W1 started at 30, was preempted in the same instant (no zero
        // span) and resumed after W2's solo run.
        let w2 = alloc.iter().find(|x| x.id == JobId(2)).unwrap();
        assert_eq!(w2.segments, vec![Segment::new(30, 35, 7)]);
        let w1 = alloc.iter().find(|x| x.id == JobId(1)).unwrap();
        assert_eq!(w1.segments, vec![Segment::new(35, 85, 7)]);
        // Completions are monotone in schedule time.
        let times: Vec<Time> = alloc.iter().map(|x| x.completion).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "{times:?}");
    }

    #[test]
    fn preemptive_schedule_passes_the_segment_audit() {
        // The randomized fleet, audited: capacity never exceeded, spans
        // disjoint per job, charged time exactly the execution time.
        let jobs: Vec<JobView> = (0..100)
            .map(|i| {
                view(
                    i,
                    1 + (i * 13) % 200,
                    1 + (i as Time * 37) % 500,
                    1.0 + (i % 7) as f64,
                )
            })
            .collect();
        let alloc = preemptive_schedule(&jobs, 256, PsrsParams::default());
        assert_eq!(alloc.len(), jobs.len());
        let audit: Vec<(JobId, &[Segment], Option<Time>)> = alloc
            .iter()
            .map(|a| {
                let time = jobs.iter().find(|j| j.id == a.id).unwrap().time;
                (a.id, a.segments.as_slice(), Some(time.max(1)))
            })
            .collect();
        let violations = jobsched_sim::check_segments(256, &audit);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn completions_are_exactly_the_schedule_projection() {
        let jobs: Vec<JobView> = (0..60)
            .map(|i| view(i, 1 + (i * 29) % 120, 1 + (i as Time * 97) % 800, 1.0))
            .collect();
        let schedule = preemptive_schedule(&jobs, 128, PsrsParams::default());
        let completions = preemptive_completions(&jobs, 128, PsrsParams::default());
        assert_eq!(
            completions,
            schedule
                .iter()
                .map(|a| (a.id, a.completion, a.wide))
                .collect::<Vec<_>>()
        );
        // Each union ends exactly at the completion it projects to.
        for a in &schedule {
            assert_eq!(a.segments.last().unwrap().end, a.completion);
        }
    }

    #[test]
    fn all_jobs_complete_exactly_once() {
        let jobs: Vec<JobView> = (0..100)
            .map(|i| {
                view(
                    i,
                    1 + (i * 13) % 200,
                    1 + (i as Time * 37) % 500,
                    1.0 + (i % 7) as f64,
                )
            })
            .collect();
        let c = preemptive_completions(&jobs, 256, PsrsParams::default());
        assert_eq!(c.len(), 100);
        let mut ids: Vec<u32> = c.iter().map(|x| x.0 .0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 100);
    }

    #[test]
    fn order_is_permutation() {
        let jobs: Vec<JobView> = (0..80)
            .map(|i| {
                view(
                    i,
                    1 + (i * 29) % 256,
                    1 + (i as Time * 97) % 10_000,
                    1.0 + (i % 5) as f64,
                )
            })
            .collect();
        let order = psrs_order(&jobs, 256, PsrsParams::default());
        let mut ids: Vec<u32> = order.iter().map(|j| j.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..80).collect::<Vec<_>>());
    }

    #[test]
    fn early_bins_lead_the_order() {
        // A tiny high-ratio job completes almost immediately in the
        // preemptive schedule and must appear before a long job that
        // completes late.
        let jobs = vec![view(0, 10, 10_000, 1.0), view(1, 1, 2, 1.0)];
        let order = psrs_order(&jobs, 256, PsrsParams::default());
        assert_eq!(order[0], JobId(1));
    }

    #[test]
    fn deterministic_under_permutation() {
        let jobs: Vec<JobView> = (0..40)
            .map(|i| view(i, 1 + (i * 7) % 100, 1 + (i as Time * 11) % 300, 1.0))
            .collect();
        let mut rev = jobs.clone();
        rev.reverse();
        assert_eq!(
            psrs_order(&jobs, 128, PsrsParams::default()),
            psrs_order(&rev, 128, PsrsParams::default())
        );
    }

    #[test]
    fn empty_input() {
        assert!(psrs_order(&[], 256, PsrsParams::default()).is_empty());
    }

    #[test]
    fn weighted_scheme_degenerates_gracefully() {
        // With weight = area the modified Smith ratio is 1 for every job;
        // the order must still be a deterministic permutation.
        let jobs: Vec<JobView> = (0..30)
            .map(|i| {
                let nodes = 1 + (i * 3) % 64;
                let time = 1 + (i as Time * 17) % 400;
                view(i, nodes, time, nodes as f64 * time as f64)
            })
            .collect();
        let order = psrs_order(&jobs, 256, PsrsParams::default());
        assert_eq!(order.len(), 30);
    }
}
