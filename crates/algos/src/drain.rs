//! Example 4: a recurring exclusive reservation on a machine without
//! time sharing.
//!
//! "Assume a machine that does not support time sharing. The scheduling
//! policy includes the rule: *Every weekday at 10am the entire machine
//! must be available to a theoretical chemistry class for 1 hour.* …
//! as users are not able to provide accurate execution time estimates for
//! their jobs no scheduling algorithm can generate good schedules."
//!
//! [`DrainingFcfs`] implements the only valid strategy on such a machine:
//! never start a job whose *estimated* completion crosses the next window
//! (so the machine is provably empty when the class begins), and backfill
//! shorter jobs into the draining tail. The §2.4 dependence the example
//! illustrates — policy rules whose cost explodes with estimate
//! inaccuracy — is measured by `core::extensions::drain_window_cost`.
//!
//! Jobs whose estimate exceeds the longest window-free gap
//! ([`RecurringWindow::max_gap`]) can never comply; the two policy rules
//! conflict, and per §2.1 ("a good policy contains rules to resolve
//! conflicts") we resolve explicitly in favour of progress: such jobs are
//! exempt from the drain rule and may overlap the class window.

use crate::scheduler::Waiting;
use jobsched_sim::{JobRequest, Machine, Scheduler};
use jobsched_workload::job::{DAY, HOUR, WEEK};
use jobsched_workload::{JobId, Time};

/// A recurring exclusive window (weekdays only, as in Example 4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecurringWindow {
    /// Hour of day the window opens (0..24).
    pub start_hour: u8,
    /// Window length in seconds.
    pub duration: Time,
}

impl RecurringWindow {
    /// Example 4's window: weekdays, 10:00–11:00.
    pub fn example4() -> Self {
        RecurringWindow {
            start_hour: 10,
            duration: HOUR,
        }
    }

    fn start_in_day(&self, day_origin: Time) -> Time {
        day_origin + self.start_hour as Time * HOUR
    }

    fn is_weekday(day_index: Time) -> bool {
        day_index % 7 < 5
    }

    /// Whether `t` lies inside a window occurrence.
    pub fn contains(&self, t: Time) -> bool {
        let day = t / DAY;
        if !Self::is_weekday(day) {
            return false;
        }
        let start = self.start_in_day(day * DAY);
        (start..start + self.duration).contains(&t)
    }

    /// Start of the next window occurrence at or after `t`.
    pub fn next_start(&self, t: Time) -> Time {
        let mut day = t / DAY;
        loop {
            if Self::is_weekday(day) {
                let start = self.start_in_day(day * DAY);
                if start >= t {
                    return start;
                }
            }
            day += 1;
            debug_assert!(day * DAY < t + 2 * WEEK, "window search runaway");
        }
    }

    /// End of the window occurrence containing `t` (undefined results if
    /// `t` is outside every window).
    pub fn end_of(&self, t: Time) -> Time {
        let day = t / DAY;
        self.start_in_day(day * DAY) + self.duration
    }

    /// The longest window-free gap in the weekly calendar (for
    /// Example 4's weekday 10–11 window: Friday 11:00 → Monday 10:00,
    /// 71 hours). A job whose estimate exceeds this can never comply with
    /// the drain rule.
    pub fn max_gap(&self) -> Time {
        let mut starts: Vec<Time> = (0..14)
            .filter(|d| Self::is_weekday(*d))
            .map(|d| self.start_in_day(d * DAY))
            .collect();
        starts.sort_unstable();
        starts
            .windows(2)
            .map(|p| p[1] - (p[0] + self.duration))
            .max()
            .expect("at least two weekday windows in two weeks")
    }
}

/// FCFS that drains the machine ahead of every window occurrence: a job
/// starts only if its *estimate* completes before the next window, and
/// jobs behind a window-blocked head may backfill under the same rule
/// (they cannot delay the head — it is waiting for the window, not for
/// nodes).
#[derive(Debug)]
pub struct DrainingFcfs {
    window: RecurringWindow,
    waiting: Waiting,
}

impl DrainingFcfs {
    /// New scheduler with the given recurring window.
    pub fn new(window: RecurringWindow) -> Self {
        DrainingFcfs {
            window,
            waiting: Waiting::new(),
        }
    }
}

impl Scheduler for DrainingFcfs {
    fn name(&self) -> String {
        format!(
            "FCFS+drain[{}:00+{}s weekdays]",
            self.window.start_hour, self.window.duration
        )
    }

    fn submit(&mut self, job: JobRequest, _now: Time) {
        self.waiting.insert(job);
    }

    fn cancel(&mut self, id: JobId, _now: Time) {
        if self.waiting.contains(id) {
            self.waiting.remove(id);
        }
    }

    fn select_starts(&mut self, now: Time, machine: &Machine) -> Vec<JobId> {
        if machine.free_nodes() == 0 || self.waiting.is_empty() {
            return Vec::new();
        }
        if self.window.contains(now) {
            // The class owns the machine; nothing starts.
            return Vec::new();
        }
        let window_start = self.window.next_start(now);
        let max_gap = self.window.max_gap();
        let mut free = machine.free_nodes();
        let mut picks = Vec::new();
        let mut head_passed = false;
        for id in self.waiting.ids() {
            if free == 0 {
                break;
            }
            let job = self.waiting.get(id);
            // A job whose estimate exceeds the widest window-free gap can
            // never comply: the policy rules conflict (§2.1 demands such
            // conflicts be resolved) and we resolve in favour of progress —
            // the job is exempt from the drain rule.
            let clears_window =
                now + job.requested_time.max(1) <= window_start || job.requested_time > max_gap;
            let fits = job.nodes <= free;
            if fits && clears_window {
                free -= job.nodes;
                picks.push(id);
            } else if !head_passed && fits && !clears_window {
                // Head is blocked purely by the window: later jobs may
                // backfill (they cannot postpone it — it starts after the
                // class regardless).
                head_passed = true;
            } else if !head_passed && !fits {
                // Head blocked by nodes: plain FCFS semantics, stop.
                break;
            }
        }
        for &id in &picks {
            self.waiting.remove(id);
        }
        picks
    }

    fn queue_len(&self) -> usize {
        self.waiting.len()
    }

    fn next_wakeup(&self, now: Time) -> Option<Time> {
        if self.waiting.is_empty() {
            return None;
        }
        // Jobs blocked by the drain rule become startable when the next
        // window closes.
        Some(if self.window.contains(now) {
            self.window.end_of(now)
        } else {
            self.window.next_start(now) + self.window.duration
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jobsched_sim::simulate;
    use jobsched_workload::{JobBuilder, Workload};

    #[test]
    fn window_calendar() {
        let w = RecurringWindow::example4();
        // Monday 10:30 is inside; Monday 11:00 is not; Saturday 10:30 is not.
        assert!(w.contains(10 * HOUR + 1800));
        assert!(!w.contains(11 * HOUR));
        assert!(!w.contains(5 * DAY + 10 * HOUR + 1800));
        // Next start from Monday noon is Tuesday 10am.
        assert_eq!(w.next_start(12 * HOUR), DAY + 10 * HOUR);
        // Next start from Friday noon is Monday 10am.
        assert_eq!(w.next_start(4 * DAY + 12 * HOUR), 7 * DAY + 10 * HOUR);
        // From Monday 9am it is Monday 10am.
        assert_eq!(w.next_start(9 * HOUR), 10 * HOUR);
        assert_eq!(w.end_of(10 * HOUR + 10), 11 * HOUR);
    }

    #[test]
    fn window_boundary_instants() {
        let w = RecurringWindow::example4();
        // The opening instant is inside, the closing instant is outside.
        assert!(w.contains(10 * HOUR));
        assert!(!w.contains(10 * HOUR - 1));
        assert!(w.contains(11 * HOUR - 1));
        assert!(!w.contains(11 * HOUR));
        // next_start at exactly a window start returns that same start —
        // the occurrence "at or after t" includes t itself.
        assert_eq!(w.next_start(10 * HOUR), 10 * HOUR);
        // One second into the window the current occurrence is behind us.
        assert_eq!(w.next_start(10 * HOUR + 1), DAY + 10 * HOUR);
        // contains/end_of agree at both edges of an occurrence.
        assert_eq!(w.end_of(10 * HOUR), 11 * HOUR);
        assert_eq!(w.end_of(11 * HOUR - 1), 11 * HOUR);
        // Weekend rollover: any instant from Friday 10:00:01 onward maps
        // to Monday 10:00 (day indices 5, 6 are the weekend).
        assert_eq!(w.next_start(4 * DAY + 10 * HOUR + 1), 7 * DAY + 10 * HOUR);
        assert_eq!(w.next_start(5 * DAY), 7 * DAY + 10 * HOUR);
        assert_eq!(w.next_start(6 * DAY + 23 * HOUR), 7 * DAY + 10 * HOUR);
        assert_eq!(w.next_start(7 * DAY + 10 * HOUR), 7 * DAY + 10 * HOUR);
    }

    #[test]
    fn drain_admits_a_job_finishing_exactly_at_the_window_start() {
        // Estimated completion landing exactly on 10:00 clears the drain
        // (the window is half-open); one second longer must wait out the
        // class.
        let jobs = vec![
            JobBuilder::new(JobId(0))
                .submit(9 * HOUR)
                .nodes(8)
                .exact_runtime(HOUR)
                .build(),
            JobBuilder::new(JobId(0))
                .submit(9 * HOUR)
                .nodes(8)
                .exact_runtime(HOUR + 1)
                .build(),
        ];
        let w = Workload::new("drain", 64, jobs);
        let mut s = DrainingFcfs::new(RecurringWindow::example4());
        let out = simulate(&w, &mut s);
        assert_eq!(out.schedule.placement(JobId(0)).unwrap().start, 9 * HOUR);
        assert_eq!(out.schedule.placement(JobId(1)).unwrap().start, 11 * HOUR);
    }

    #[test]
    fn wakeup_at_boundary_instants_points_past_the_window() {
        let mut s = DrainingFcfs::new(RecurringWindow::example4());
        assert_eq!(s.next_wakeup(9 * HOUR), None, "empty queue never wakes");
        s.submit(
            JobRequest {
                id: JobId(0),
                submit: 0,
                nodes: 1,
                class: jobsched_workload::ClassId(0),
                requested_time: 100,
                user: 0,
            },
            0,
        );
        // Before, at the opening instant, mid-window and at the closing
        // instant: the wakeup always lands on (or beyond) a window end.
        assert_eq!(s.next_wakeup(9 * HOUR), Some(11 * HOUR));
        assert_eq!(s.next_wakeup(10 * HOUR), Some(11 * HOUR));
        assert_eq!(s.next_wakeup(10 * HOUR + 1800), Some(11 * HOUR));
        // 11:00 sharp is outside the window again: next relevant close is
        // tomorrow's.
        assert_eq!(s.next_wakeup(11 * HOUR), Some(DAY + 11 * HOUR));
        // Friday after class: the weekend gap defers to Monday 11:00.
        assert_eq!(
            s.next_wakeup(4 * DAY + 11 * HOUR),
            Some(7 * DAY + 11 * HOUR)
        );
    }

    #[test]
    fn machine_is_empty_during_every_window() {
        // Jobs with exact 2 h estimates submitted all morning: whatever
        // the scheduler does, nothing may overlap 10:00–11:00.
        let jobs: Vec<_> = (0..40)
            .map(|i| {
                JobBuilder::new(JobId(0))
                    .submit(i * 600)
                    .nodes(16)
                    .exact_runtime(2 * HOUR)
                    .build()
            })
            .collect();
        let w = Workload::new("drain", 64, jobs);
        let mut s = DrainingFcfs::new(RecurringWindow::example4());
        let out = simulate(&w, &mut s);
        assert!(out.schedule.validate(&w).is_empty());
        let win = RecurringWindow::example4();
        for j in w.jobs() {
            let p = out.schedule.placement(j.id).unwrap();
            for t in [p.start, p.completion - 1] {
                assert!(!win.contains(t), "{:?} touches the window: {p:?}", j.id);
            }
            // Entire execution clear of windows: starts after previous end
            // or ends before next start.
            let next = win.next_start(p.start);
            assert!(
                p.completion <= next || p.start >= win.end_of(next),
                "{:?} spans a window: {p:?}",
                j.id
            );
        }
    }

    #[test]
    fn short_jobs_backfill_into_the_draining_tail() {
        // At 9:00 a 2 h job blocks on the 10:00 window; a 30 min job
        // behind it must still start immediately.
        let jobs = vec![
            JobBuilder::new(JobId(0))
                .submit(9 * HOUR)
                .nodes(32)
                .exact_runtime(2 * HOUR)
                .build(),
            JobBuilder::new(JobId(0))
                .submit(9 * HOUR + 60)
                .nodes(32)
                .exact_runtime(1800)
                .build(),
        ];
        let w = Workload::new("drain", 64, jobs);
        let mut s = DrainingFcfs::new(RecurringWindow::example4());
        let out = simulate(&w, &mut s);
        assert_eq!(
            out.schedule.placement(JobId(1)).unwrap().start,
            9 * HOUR + 60
        );
        // The long head waits for the class to end.
        assert_eq!(out.schedule.placement(JobId(0)).unwrap().start, 11 * HOUR);
    }

    #[test]
    fn max_gap_is_the_weekend() {
        // Friday 11:00 → Monday 10:00 = 71 h.
        assert_eq!(RecurringWindow::example4().max_gap(), 71 * HOUR);
    }

    #[test]
    fn uncompliable_jobs_are_exempt_and_simulation_terminates() {
        // A 100 h estimate can never clear the 71 h max gap: the job is
        // exempt from the drain rule and starts immediately.
        let jobs = vec![JobBuilder::new(JobId(0))
            .submit(9 * HOUR)
            .nodes(8)
            .requested(100 * HOUR)
            .runtime(30 * HOUR)
            .build()];
        let w = Workload::new("drain", 64, jobs);
        let mut s = DrainingFcfs::new(RecurringWindow::example4());
        let out = simulate(&w, &mut s);
        assert_eq!(out.schedule.placement(JobId(0)).unwrap().start, 9 * HOUR);
    }

    #[test]
    fn overestimates_widen_the_drain_shadow() {
        // The Example 4 phenomenon: a job that actually runs 30 min but is
        // estimated at 4 h cannot start at 9:30 even though it would have
        // finished in time.
        let jobs = vec![JobBuilder::new(JobId(0))
            .submit(9 * HOUR + 1800)
            .nodes(8)
            .requested(4 * HOUR)
            .runtime(1800)
            .build()];
        let w = Workload::new("drain", 64, jobs);
        let mut s = DrainingFcfs::new(RecurringWindow::example4());
        let out = simulate(&w, &mut s);
        assert_eq!(out.schedule.placement(JobId(0)).unwrap().start, 11 * HOUR);
    }
}
