//! The paper's scheduling algorithms (§5) and backfilling variants.
//!
//! All five algorithms are realised as *list schedulers*: an ordering
//! policy produces a priority order over the waiting jobs, and a selection
//! strategy decides which ordered jobs start now:
//!
//! | paper algorithm | ordering ([`order::OrderPolicy`]) | selection |
//! |---|---|---|
//! | FCFS (§5.1) | submission order | head-blocking greedy |
//! | Garey & Graham (§5.3) | submission order | start anything that fits |
//! | SMART-FFIA / SMART-NFIW (§5.4) | shelf order recomputed online | head-blocking greedy |
//! | PSRS (§5.5) | preemptive-schedule bin order recomputed online | head-blocking greedy |
//!
//! and any head-blocking selection can be upgraded with conservative or
//! EASY backfilling (§5.2, [`backfill::BackfillMode`]). Backfilling brings
//! no benefit to Garey & Graham (§5.3) because it already starts every
//! fitting job.
//!
//! Beyond the paper's rows, [`priority::PriorityScheduler`] generalises
//! the ordering side into a scoring function over (wait, estimate,
//! width) — SJF/LJF, smallest/largest-first, WFP, WFP³, UNICEF and
//! SC'17-style F-combinations ([`priority::ScoreFn`]) — each composing
//! with the same three selection strategies.
//!
//! The offline algorithms are adapted to the online setting exactly as
//! §5.4/§5.5 describe: they only *order* the wait queue; user estimates
//! stand in for execution times; the order is recomputed when the
//! unordered fraction of the queue passes the paper's ⅓ threshold
//! ([`order::ReorderTrigger`]).

pub mod backfill;
pub mod dfrs;
pub mod drain;
pub mod garey_graham;
pub mod order;
pub mod priority;
pub mod psrs;
pub mod scheduler;
pub mod smart;
pub mod spec;
pub mod switching;
pub mod view;

pub use backfill::BackfillMode;
pub use dfrs::{DfrsScheduler, MoldableScheduler};
pub use order::OrderPolicy;
pub use priority::{PriorityScheduler, ScoreFn};
pub use scheduler::{ListScheduler, ProfileMode};
pub use smart::SmartVariant;
pub use spec::AlgorithmSpec;
pub use view::JobView;
