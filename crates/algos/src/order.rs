//! Ordering policies and the online re-computation trigger (§5.4/§5.5).
//!
//! FCFS and Garey & Graham order by submission; SMART and PSRS are offline
//! algorithms adapted to the online setting by re-running them over the
//! wait queue. §5.4: "In order to reduce the number of recomputations …
//! the schedule is recalculated when the ratio between the already
//! scheduled jobs in the wait queue to all the jobs in this queue exceeds
//! a certain value. In the example a ratio of 2/3 is used." We read this
//! as: recompute once the *unordered* fraction of the queue exceeds ⅓
//! (equivalently, the ordered fraction has fallen below ⅔); see DESIGN.md.

use crate::psrs::{psrs_order, PsrsParams};
use crate::smart::{smart_order, SmartVariant};
use crate::view::{JobView, WeightScheme};
use jobsched_workload::JobId;

/// How the wait queue is ordered.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum OrderPolicy {
    /// Submission order; head-blocking greedy start (§5.1).
    Fcfs,
    /// Submission order; start anything that fits (§5.3).
    GareyGraham,
    /// SMART shelf order (§5.4), recomputed online.
    Smart {
        /// Packing variant.
        variant: SmartVariant,
        /// Geometric bin parameter (the paper uses γ = 2).
        gamma: f64,
        /// Weight regime.
        scheme: WeightScheme,
    },
    /// PSRS bin order (§5.5), recomputed online.
    Psrs {
        /// Adaptation parameters.
        params: PsrsParams,
        /// Weight regime.
        scheme: WeightScheme,
    },
}

impl OrderPolicy {
    /// SMART with the paper's γ = 2.
    pub fn smart(variant: SmartVariant, scheme: WeightScheme) -> Self {
        OrderPolicy::Smart {
            variant,
            gamma: 2.0,
            scheme,
        }
    }

    /// PSRS with default adaptation parameters.
    pub fn psrs(scheme: WeightScheme) -> Self {
        OrderPolicy::Psrs {
            params: PsrsParams::default(),
            scheme,
        }
    }

    /// Whether the order must be recomputed as the queue evolves.
    pub fn is_dynamic(&self) -> bool {
        matches!(self, OrderPolicy::Smart { .. } | OrderPolicy::Psrs { .. })
    }

    /// Weight scheme used by the policy (trivial for FCFS / G&G).
    pub fn scheme(&self) -> WeightScheme {
        match self {
            OrderPolicy::Fcfs | OrderPolicy::GareyGraham => WeightScheme::Unweighted,
            OrderPolicy::Smart { scheme, .. } | OrderPolicy::Psrs { scheme, .. } => *scheme,
        }
    }

    /// Row label matching the paper's tables.
    pub fn label(&self) -> String {
        match self {
            OrderPolicy::Fcfs => "FCFS".into(),
            OrderPolicy::GareyGraham => "Garey&Graham".into(),
            OrderPolicy::Smart { variant, .. } => format!("SMART-{}", variant.label()),
            OrderPolicy::Psrs { .. } => "PSRS".into(),
        }
    }

    /// Run the offline ordering algorithm over the given queue snapshot.
    /// Only meaningful for dynamic policies.
    pub fn compute(&self, views: &[JobView], machine_nodes: u32) -> Vec<JobId> {
        match self {
            OrderPolicy::Fcfs | OrderPolicy::GareyGraham => {
                let mut ids: Vec<JobId> = views.iter().map(|v| v.id).collect();
                ids.sort_unstable();
                ids
            }
            OrderPolicy::Smart { variant, gamma, .. } => {
                smart_order(views, machine_nodes, *gamma, *variant)
            }
            OrderPolicy::Psrs { params, .. } => psrs_order(views, machine_nodes, *params),
        }
    }
}

/// The §5.4 re-computation trigger.
#[derive(Clone, Copy, Debug)]
pub struct ReorderTrigger {
    /// Recompute once `unordered / queue_len` exceeds this fraction
    /// (paper value: 1/3, i.e. ordered coverage below 2/3).
    pub max_unordered_fraction: f64,
}

impl Default for ReorderTrigger {
    fn default() -> Self {
        ReorderTrigger {
            max_unordered_fraction: 1.0 / 3.0,
        }
    }
}

impl ReorderTrigger {
    /// Should the order be recomputed for a queue of `queue_len` jobs of
    /// which `unordered` arrived after the last computation?
    pub fn fires(&self, unordered: usize, queue_len: usize) -> bool {
        if queue_len == 0 {
            return false;
        }
        unordered as f64 > self.max_unordered_fraction * queue_len as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_rows() {
        assert_eq!(OrderPolicy::Fcfs.label(), "FCFS");
        assert_eq!(OrderPolicy::GareyGraham.label(), "Garey&Graham");
        assert_eq!(
            OrderPolicy::smart(SmartVariant::Ffia, WeightScheme::Unweighted).label(),
            "SMART-FFIA"
        );
        assert_eq!(
            OrderPolicy::smart(SmartVariant::Nfiw, WeightScheme::Unweighted).label(),
            "SMART-NFIW"
        );
        assert_eq!(OrderPolicy::psrs(WeightScheme::Unweighted).label(), "PSRS");
    }

    #[test]
    fn dynamic_flags() {
        assert!(!OrderPolicy::Fcfs.is_dynamic());
        assert!(!OrderPolicy::GareyGraham.is_dynamic());
        assert!(OrderPolicy::smart(SmartVariant::Ffia, WeightScheme::Unweighted).is_dynamic());
        assert!(OrderPolicy::psrs(WeightScheme::ProjectedArea).is_dynamic());
    }

    #[test]
    fn fcfs_compute_sorts_by_id() {
        let views = vec![
            JobView {
                id: JobId(5),
                nodes: 1,
                time: 10,
                weight: 1.0,
            },
            JobView {
                id: JobId(2),
                nodes: 1,
                time: 10,
                weight: 1.0,
            },
        ];
        assert_eq!(
            OrderPolicy::Fcfs.compute(&views, 10),
            vec![JobId(2), JobId(5)]
        );
    }

    #[test]
    fn trigger_fires_above_one_third() {
        let t = ReorderTrigger::default();
        assert!(!t.fires(0, 9));
        assert!(!t.fires(3, 9)); // exactly 1/3: not exceeded
        assert!(t.fires(4, 9));
        assert!(t.fires(1, 1)); // fresh queue: everything unordered
        assert!(!t.fires(0, 0));
    }

    #[test]
    fn trigger_threshold_configurable() {
        let t = ReorderTrigger {
            max_unordered_fraction: 0.0,
        };
        assert!(t.fires(1, 100)); // any new job triggers
    }
}
