//! The job view the offline ordering algorithms operate on.
//!
//! SMART and PSRS are defined over jobs with a known execution time and a
//! weight. Online, "instead of the actual execution time of a job the
//! value provided by the user at job submission is used" (§5.4), and the
//! weight is 1 (unweighted / Rule 5 objective) or the projected resource
//! consumption (weighted / Rule 6 objective, §4).

use jobsched_sim::JobRequest;
use jobsched_workload::{JobId, Time};

/// Weight regime for the ordering algorithms.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum WeightScheme {
    /// Every job weighs 1 — optimises average response time (Rule 5).
    #[default]
    Unweighted,
    /// Weight = projected resource consumption `requested_time × nodes`
    /// — optimises average weighted response time (Rule 6).
    ProjectedArea,
}

impl WeightScheme {
    /// Weight of a request under this scheme.
    #[inline]
    pub fn weight(self, job: &JobRequest) -> f64 {
        match self {
            WeightScheme::Unweighted => 1.0,
            WeightScheme::ProjectedArea => job.projected_area(),
        }
    }

    /// Short label used in algorithm names.
    pub fn label(self) -> &'static str {
        match self {
            WeightScheme::Unweighted => "unw",
            WeightScheme::ProjectedArea => "w",
        }
    }
}

/// A waiting job as seen by the offline ordering algorithms.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JobView {
    /// Identity.
    pub id: JobId,
    /// Rigid node requirement.
    pub nodes: u32,
    /// Execution time as known to the algorithm (the user estimate).
    pub time: Time,
    /// Weight under the active [`WeightScheme`].
    pub weight: f64,
}

impl JobView {
    /// Build a view from a request under the given weight scheme.
    pub fn of(job: &JobRequest, scheme: WeightScheme) -> Self {
        JobView {
            id: job.id,
            nodes: job.nodes,
            time: job.requested_time.max(1),
            weight: scheme.weight(job),
        }
    }

    /// Area under the algorithm's knowledge: `time × nodes`.
    #[inline]
    pub fn area(&self) -> f64 {
        self.time as f64 * self.nodes as f64
    }

    /// Modified Smith ratio (§5.5): weight / (nodes × time). Larger =
    /// more urgent.
    #[inline]
    pub fn smith_ratio(&self) -> f64 {
        self.weight / self.area()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(nodes: u32, requested: Time) -> JobRequest {
        JobRequest {
            id: JobId(1),
            submit: 0,
            nodes,
            class: jobsched_workload::ClassId(0),
            requested_time: requested,
            user: 0,
        }
    }

    #[test]
    fn unweighted_view() {
        let v = JobView::of(&req(8, 100), WeightScheme::Unweighted);
        assert_eq!(v.weight, 1.0);
        assert_eq!(v.area(), 800.0);
        assert!((v.smith_ratio() - 1.0 / 800.0).abs() < 1e-15);
    }

    #[test]
    fn weighted_view_uses_projected_area() {
        let v = JobView::of(&req(8, 100), WeightScheme::ProjectedArea);
        assert_eq!(v.weight, 800.0);
        // Weight = area ⇒ modified Smith ratio ≡ 1 for every job.
        assert_eq!(v.smith_ratio(), 1.0);
    }

    #[test]
    fn zero_requested_time_clamped() {
        let v = JobView::of(&req(1, 0), WeightScheme::Unweighted);
        assert_eq!(v.time, 1);
    }

    #[test]
    fn labels() {
        assert_eq!(WeightScheme::Unweighted.label(), "unw");
        assert_eq!(WeightScheme::ProjectedArea.label(), "w");
    }
}
