//! Selection strategies: greedy list scheduling and the two backfilling
//! variants of §5.2 (Lifka [10], Feitelson & Weil [4]).
//!
//! All strategies take the current priority order of the waiting jobs and
//! the machine state and return the jobs to start *now*:
//!
//! * [`BackfillMode::None`] — plain greedy list ("the next job in the list
//!   is started as soon as the necessary resources are available"): start
//!   from the head until the first job that does not fit.
//! * [`BackfillMode::Easy`] — "EASY backfill … will not postpone the
//!   *projected* execution of the next job in the list [but] may increase
//!   the completion time of jobs further down the list": compute the head
//!   job's shadow time and spare nodes from the projected ends of running
//!   jobs; backfill any later job that fits now and either ends (by its
//!   estimate) before the shadow time or uses only spare nodes.
//! * [`BackfillMode::Conservative`] — "will not increase the *projected*
//!   completion time of a job submitted before the job used for
//!   backfilling": every queued job gets a reservation in priority order;
//!   a job starts now only if its earliest reservation is now.
//!
//! All reasoning uses user estimates; §5.2's caveat — a running job "may
//! terminate within the next 5 minutes" instead of its projected 2 hours,
//! so backfilled jobs can still delay skipped ones relative to FCFS —
//! plays out naturally in the simulator through early finish events.

use crate::scheduler::Waiting;
use jobsched_sim::{Machine, Profile};
use jobsched_workload::{ClassId, JobId, Time};

/// Backfilling flavour applied on top of a priority order (§5.2).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum BackfillMode {
    /// Plain greedy list schedule (the paper's "Listscheduler" column).
    #[default]
    None,
    /// Conservative backfilling (the paper's "Backfilling" column).
    Conservative,
    /// EASY backfilling (the paper's "EASY-Backfilling" column).
    Easy,
}

impl BackfillMode {
    /// Column label used in reports, matching the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            BackfillMode::None => "Listscheduler",
            BackfillMode::Conservative => "Backfilling",
            BackfillMode::Easy => "EASY-Backfilling",
        }
    }
}

/// Greedy head-blocking list schedule: start jobs in priority order until
/// the first that does not fit.
///
/// Lazy over the order: stops consuming at the first misfit, so plain
/// FCFS pays O(started + 1) per decision, not O(queue) — which is what
/// makes the paper's Table 7 cost relationships (list scheduling far
/// cheaper than backfilling) measurable.
pub fn select_head_blocking(
    order: impl IntoIterator<Item = JobId>,
    waiting: &Waiting,
    machine: &Machine,
) -> Vec<JobId> {
    select_head_blocking_in(ClassId(0), order, waiting, machine)
}

/// [`select_head_blocking`] restricted to one node-class pool. The order
/// must contain only jobs resolved to `class`; on a single-class machine
/// `ClassId(0)` reproduces the whole-machine scan bit for bit.
pub fn select_head_blocking_in(
    class: ClassId,
    order: impl IntoIterator<Item = JobId>,
    waiting: &Waiting,
    machine: &Machine,
) -> Vec<JobId> {
    let mut free = machine.free_in(class);
    let mut out = Vec::new();
    for id in order {
        let job = waiting.get(id);
        if job.nodes <= free {
            free -= job.nodes;
            out.push(id);
        } else {
            break;
        }
    }
    out
}

/// Result of a full EASY scan: the selected jobs plus the shadow state
/// that lets the scheduler test later arrivals incrementally (the blocked
/// head's projected start and the spare nodes at that instant).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EasyScan {
    /// Jobs to start now.
    pub picks: Vec<JobId>,
    /// Projected start of the blocked head job; [`jobsched_sim::profile::HORIZON`]
    /// when no job is blocked.
    pub shadow: Time,
    /// Nodes left over at the shadow instant once the head starts.
    pub extra: u32,
    /// Free nodes remaining now after the picks.
    pub free: u32,
}

/// How the scans obtain the availability step function.
enum Avail<'a> {
    /// Rebuild from the running set on every call (the seed behaviour;
    /// kept as the measurable baseline for `BENCH_sched.json`).
    Rebuild,
    /// Read the machine's incrementally-maintained [`jobsched_sim::LiveProfile`],
    /// materialising into the given scratch buffer only when the scan
    /// must overlay reservations.
    Live(&'a mut Profile),
}

/// EASY backfilling (Lifka's original method), full scan. Rebuilds the
/// availability profile from the running set — the pre-incremental
/// baseline, kept for the bench comparison and the differential oracle.
pub fn scan_easy(
    order: impl IntoIterator<Item = JobId>,
    waiting: &Waiting,
    machine: &Machine,
    now: Time,
) -> EasyScan {
    scan_easy_inner(ClassId(0), order, waiting, machine, now, Avail::Rebuild)
}

/// [`scan_easy`] restricted to one node-class pool: free nodes, the
/// rebuilt profile, and the shadow computation all read only that pool.
/// The order must contain only jobs resolved to `class`.
pub fn scan_easy_in(
    class: ClassId,
    order: impl IntoIterator<Item = JobId>,
    waiting: &Waiting,
    machine: &Machine,
    now: Time,
) -> EasyScan {
    scan_easy_inner(class, order, waiting, machine, now, Avail::Rebuild)
}

/// EASY backfilling over the machine's incremental [`jobsched_sim::LiveProfile`].
///
/// When phase 1 starts nothing (the usual steady state: the head stays
/// blocked), the shadow time and spare nodes are answered directly from
/// the calendar — no step function is materialised at all. Otherwise the
/// calendar is merged into `scratch` (linear, no sort, reusing its
/// allocation) and the just-started picks are overlaid as reservations.
/// Results are bit-identical to [`scan_easy`].
pub fn scan_easy_live(
    order: impl IntoIterator<Item = JobId>,
    waiting: &Waiting,
    machine: &Machine,
    now: Time,
    scratch: &mut Profile,
) -> EasyScan {
    scan_easy_inner(
        ClassId(0),
        order,
        waiting,
        machine,
        now,
        Avail::Live(scratch),
    )
}

/// [`scan_easy_live`] restricted to one node-class pool, reading the
/// pool's incremental calendar. The order must contain only jobs resolved
/// to `class`.
pub fn scan_easy_live_in(
    class: ClassId,
    order: impl IntoIterator<Item = JobId>,
    waiting: &Waiting,
    machine: &Machine,
    now: Time,
    scratch: &mut Profile,
) -> EasyScan {
    scan_easy_inner(class, order, waiting, machine, now, Avail::Live(scratch))
}

fn scan_easy_inner(
    class: ClassId,
    order: impl IntoIterator<Item = JobId>,
    waiting: &Waiting,
    machine: &Machine,
    now: Time,
    avail: Avail<'_>,
) -> EasyScan {
    let mut order = order.into_iter();
    let mut free = machine.free_in(class);
    let mut out = Vec::new();

    // Phase 1: start head jobs greedily until one blocks.
    let mut blocked_head = None;
    for id in &mut order {
        let job = waiting.get(id);
        if job.nodes <= free {
            free -= job.nodes;
            out.push(id);
        } else {
            blocked_head = Some(id);
            break;
        }
    }
    let Some(head_id) = blocked_head else {
        return EasyScan {
            picks: out,
            shadow: jobsched_sim::profile::HORIZON,
            extra: free,
            free,
        };
    };

    // Phase 2: compute the blocked head's shadow time from the projected
    // ends of running jobs plus the jobs just started (which also hold
    // nodes until their projected ends). Spare nodes: what remains free
    // at the shadow time once the head job has taken its share.
    let head = waiting.get(head_id);
    let head_duration = head.requested_time.max(1);
    let (shadow, mut extra) = match avail {
        Avail::Live(_) if out.is_empty() => {
            // Nothing started: the live calendar *is* the profile.
            let live = machine.class_profile(class);
            let shadow = live.earliest_start(now, head.nodes, head_duration, now);
            (shadow, live.free_at(now, shadow).saturating_sub(head.nodes))
        }
        avail => {
            let mut rebuilt;
            let profile = match avail {
                Avail::Rebuild => {
                    rebuilt = Profile::from_machine_class(machine, class, now);
                    &mut rebuilt
                }
                Avail::Live(scratch) => {
                    machine.class_profile(class).snapshot_into(now, scratch);
                    scratch
                }
            };
            for &id in &out {
                let j = waiting.get(id);
                profile.reserve(j.nodes, now, j.requested_time.max(1));
            }
            let shadow = profile.earliest_start(head.nodes, head_duration, now);
            (shadow, profile.free_at(shadow).saturating_sub(head.nodes))
        }
    };

    // Phase 3: backfill later jobs that fit now and do not push the head's
    // projected start.
    for id in order {
        if free == 0 {
            break;
        }
        let job = waiting.get(id);
        if job.nodes > free {
            continue;
        }
        let ends_by_shadow = now + job.requested_time.max(1) <= shadow;
        if ends_by_shadow {
            free -= job.nodes;
            out.push(id);
        } else if job.nodes <= extra {
            free -= job.nodes;
            extra -= job.nodes;
            out.push(id);
        }
    }
    EasyScan {
        picks: out,
        shadow,
        extra,
        free,
    }
}

/// EASY backfilling: the picks of a full scan.
pub fn select_easy(
    order: impl IntoIterator<Item = JobId>,
    waiting: &Waiting,
    machine: &Machine,
    now: Time,
) -> Vec<JobId> {
    scan_easy(order, waiting, machine, now).picks
}

/// Result of a full conservative scan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConservativeScan {
    /// Jobs to start now.
    pub picks: Vec<JobId>,
    /// Free nodes left *now* after all reservations of the scan — a later
    /// arrival needing more than this cannot start now.
    pub leftover: u32,
}

/// Queue depth beyond which the conservative scan switches to the
/// horizon-truncated fast path (see [`scan_conservative`]). Depths like
/// this only arise under pathological overload (the §6.3 randomized
/// workload); the paper-relevant workloads stay on the exact path.
pub const CONSERVATIVE_TRUNCATION_DEPTH: usize = 512;

/// Conservative backfilling, full scan: build the reservation calendar in
/// priority order; start exactly the jobs whose reservation is `now`.
///
/// For queues deeper than [`CONSERVATIVE_TRUNCATION_DEPTH`] the scan
/// truncates the calendar at a horizon of `now + 4 × max requested time`:
/// reservations landing beyond it are not booked. A "start now" window
/// always ends within one requested time of `now`, so dropped
/// reservations can never overlap one; the approximation can only make
/// the scan *less* eager in contrived window-crossing cases (a job that a
/// full calendar would admit may wait one more event), never break the
/// conservative no-delay guarantee. Without the truncation, each of the
/// O(queue) reservations scans an O(queue)-breakpoint profile and the
/// §6.3 stress workload becomes quadratic per event.
pub fn scan_conservative(
    order: impl IntoIterator<Item = JobId>,
    queue_len: usize,
    waiting: &Waiting,
    machine: &Machine,
    now: Time,
) -> ConservativeScan {
    scan_conservative_in(ClassId(0), order, queue_len, waiting, machine, now)
}

/// [`scan_conservative`] restricted to one node-class pool: the
/// reservation calendar covers only that pool's capacity. The order must
/// contain only jobs resolved to `class`.
pub fn scan_conservative_in(
    class: ClassId,
    order: impl IntoIterator<Item = JobId>,
    queue_len: usize,
    waiting: &Waiting,
    machine: &Machine,
    now: Time,
) -> ConservativeScan {
    let mut profile = Profile::from_machine_class(machine, class, now);
    scan_conservative_over(class, order, queue_len, waiting, machine, now, &mut profile)
}

/// Conservative backfilling over the machine's incremental
/// [`jobsched_sim::LiveProfile`]: the calendar is merged into `scratch` (linear, no
/// sort, reusing its allocation) and the scan books reservations there.
/// Results are bit-identical to [`scan_conservative`].
pub fn scan_conservative_live(
    order: impl IntoIterator<Item = JobId>,
    queue_len: usize,
    waiting: &Waiting,
    machine: &Machine,
    now: Time,
    scratch: &mut Profile,
) -> ConservativeScan {
    scan_conservative_live_in(ClassId(0), order, queue_len, waiting, machine, now, scratch)
}

/// [`scan_conservative_live`] restricted to one node-class pool, reading
/// the pool's incremental calendar. The order must contain only jobs
/// resolved to `class`.
#[allow(clippy::too_many_arguments)]
pub fn scan_conservative_live_in(
    class: ClassId,
    order: impl IntoIterator<Item = JobId>,
    queue_len: usize,
    waiting: &Waiting,
    machine: &Machine,
    now: Time,
    scratch: &mut Profile,
) -> ConservativeScan {
    machine.class_profile(class).snapshot_into(now, scratch);
    scan_conservative_over(class, order, queue_len, waiting, machine, now, scratch)
}

#[allow(clippy::too_many_arguments)]
fn scan_conservative_over(
    class: ClassId,
    order: impl IntoIterator<Item = JobId>,
    queue_len: usize,
    waiting: &Waiting,
    machine: &Machine,
    now: Time,
    profile: &mut Profile,
) -> ConservativeScan {
    let mut out = Vec::new();
    let mut leftover = machine.free_in(class);

    let truncate = queue_len > CONSERVATIVE_TRUNCATION_DEPTH;
    // Bounded reservation lookahead on deep queues (production batch
    // schedulers do the same): only the first 2×depth priority entries
    // get reservations. Jobs beyond that window are under hours of
    // higher-priority backlog; they re-enter the window as it drains.
    let scan_limit = if truncate {
        2 * CONSERVATIVE_TRUNCATION_DEPTH
    } else {
        usize::MAX
    };
    let horizon = if truncate {
        let max_req = waiting
            .requests()
            .map(|r| r.requested_time)
            .max()
            .unwrap_or(1)
            .max(1);
        now.saturating_add(4 * max_req)
    } else {
        jobsched_sim::profile::HORIZON
    };
    // Largest free-node level anywhere below the horizon: a job needing
    // more can only reserve beyond it, so it is skipped without a scan.
    // Recomputed only when a reservation is actually booked.
    let mut max_free_below_horizon = machine.total_in(class);

    for id in order.into_iter().take(scan_limit) {
        let job = waiting.get(id);
        if truncate && job.nodes > max_free_below_horizon {
            continue;
        }
        let duration = job.requested_time.max(1);
        let start = profile.earliest_start(job.nodes, duration, now);
        if start >= horizon {
            continue; // cannot overlap any start-now window
        }
        profile.reserve(job.nodes, start, duration);
        if start == now {
            out.push(id);
        }
        leftover = profile.free_at(now);
        if leftover == 0 {
            // No node is free now; no later job can start now, and its
            // reservation cannot influence *this* round's starts.
            break;
        }
        if truncate {
            max_free_below_horizon = profile.max_free_before(horizon);
            if max_free_below_horizon == 0 {
                break; // the whole pick-relevant calendar is saturated
            }
        }
    }
    ConservativeScan {
        picks: out,
        leftover,
    }
}

/// Conservative backfilling: the picks of a full scan over the whole
/// queue (the order must cover every waiting job).
pub fn select_conservative(
    order: impl IntoIterator<Item = JobId>,
    waiting: &Waiting,
    machine: &Machine,
    now: Time,
) -> Vec<JobId> {
    scan_conservative(order, waiting.len(), waiting, machine, now).picks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::Waiting;
    use jobsched_sim::JobRequest;

    fn req(id: u32, nodes: u32, requested: Time) -> JobRequest {
        JobRequest {
            id: JobId(id),
            submit: 0,
            nodes,
            class: ClassId(0),
            requested_time: requested,
            user: 0,
        }
    }

    fn waiting(reqs: &[JobRequest]) -> (Waiting, Vec<JobId>) {
        let mut w = Waiting::new();
        for r in reqs {
            w.insert(*r);
        }
        let order = reqs.iter().map(|r| r.id).collect();
        (w, order)
    }

    #[test]
    fn head_blocking_stops_at_first_misfit() {
        let m = Machine::new(10);
        let (w, order) = waiting(&[req(0, 4, 10), req(1, 8, 10), req(2, 1, 10)]);
        // J1 does not fit after J0; J2 would, but head-blocking stops.
        assert_eq!(
            select_head_blocking(order.iter().copied(), &w, &m),
            vec![JobId(0)]
        );
    }

    #[test]
    fn easy_backfills_short_job_behind_blocked_head() {
        let mut m = Machine::new(10);
        // Running job until 100. Head needs 8 nodes → shadow = 100. A
        // 4-node job with estimate 50 ends by the shadow and is backfilled.
        m.start(JobId(9), 6, 0, 100).unwrap();
        let (w, order) = waiting(&[req(0, 8, 1000), req(1, 4, 50)]);
        assert_eq!(
            select_easy(order.iter().copied(), &w, &m, 0),
            vec![JobId(1)]
        );
    }

    #[test]
    fn easy_rejects_backfill_that_delays_head() {
        let mut m = Machine::new(10);
        m.start(JobId(9), 6, 0, 100).unwrap();
        // Head needs 8 → shadow 100, extra = 10 − 8 = 2 at shadow.
        // A 4-node job with estimate 200 runs past the shadow and exceeds
        // the 2 spare nodes → rejected.
        let (w, order) = waiting(&[req(0, 8, 1000), req(1, 4, 200)]);
        assert!(select_easy(order.iter().copied(), &w, &m, 0).is_empty());
    }

    #[test]
    fn easy_allows_long_backfill_within_spare_nodes() {
        let mut m = Machine::new(10);
        m.start(JobId(9), 6, 0, 100).unwrap();
        // 2-node long job ≤ extra (2): cannot delay the 8-node head.
        let (w, order) = waiting(&[req(0, 8, 1000), req(1, 2, 10_000)]);
        assert_eq!(
            select_easy(order.iter().copied(), &w, &m, 0),
            vec![JobId(1)]
        );
    }

    #[test]
    fn easy_counts_started_jobs_in_shadow() {
        let m = Machine::new(10);
        // Empty machine: J0 starts now (6 nodes, until 100). Head J1 needs
        // 8 → shadow 100 with extra 2. J2 (4 nodes, long) must not
        // backfill; J3 (2 nodes, long) may.
        let (w, order) = waiting(&[
            req(0, 6, 100),
            req(1, 8, 1000),
            req(2, 4, 5000),
            req(3, 2, 5000),
        ]);
        assert_eq!(
            select_easy(order.iter().copied(), &w, &m, 0),
            vec![JobId(0), JobId(3)]
        );
    }

    #[test]
    fn conservative_starts_only_reservations_at_now() {
        let mut m = Machine::new(10);
        m.start(JobId(9), 6, 0, 100).unwrap();
        // J0 (head, 8 nodes) reserves at 100. J1 (4 nodes, est 50) fits
        // before the reservation → starts now. J2 (4 nodes, est 200) would
        // collide with J0's reservation → reserves later, does not start.
        let (w, order) = waiting(&[req(0, 8, 1000), req(1, 4, 50), req(2, 4, 200)]);
        assert_eq!(
            select_conservative(order.iter().copied(), &w, &m, 0),
            vec![JobId(1)]
        );
    }

    #[test]
    fn conservative_respects_earlier_reservations() {
        let mut m = Machine::new(10);
        // Machine full until 100: nothing can start now regardless of order.
        m.start(JobId(9), 10, 0, 100).unwrap();
        let (w, order) = waiting(&[req(0, 1, 10), req(1, 1, 10)]);
        assert!(select_conservative(order.iter().copied(), &w, &m, 0).is_empty());
    }

    #[test]
    fn conservative_chains_reservations() {
        let m = Machine::new(10);
        // Empty machine. J0 takes all 10 nodes (est 100): starts now.
        // J1 (10 nodes) reserves [100, 200). J2 (1 node, est 50): its
        // earliest window inside [0,100) is gone (J0 holds 10), so it can
        // only start at 200 — J1's full-machine reservation blocks it.
        let (w, order) = waiting(&[req(0, 10, 100), req(1, 10, 100), req(2, 1, 50)]);
        assert_eq!(
            select_conservative(order.iter().copied(), &w, &m, 0),
            vec![JobId(0)]
        );
    }

    #[test]
    fn all_strategies_return_feasible_sets() {
        let mut m = Machine::new(20);
        m.start(JobId(99), 7, 0, 500).unwrap();
        let reqs: Vec<JobRequest> = (0..12)
            .map(|i| req(i, 1 + (i * 5) % 16, 50 + 100 * i as Time))
            .collect();
        let (w, order) = waiting(&reqs);
        for picks in [
            select_head_blocking(order.iter().copied(), &w, &m),
            select_easy(order.iter().copied(), &w, &m, 0),
            select_conservative(order.iter().copied(), &w, &m, 0),
        ] {
            let total: u32 = picks.iter().map(|&id| w.get(id).nodes).sum();
            assert!(total <= m.free_nodes(), "picks {picks:?} overcommit");
        }
    }

    #[test]
    fn empty_order_yields_nothing() {
        let m = Machine::new(10);
        let (w, _) = waiting(&[]);
        assert!(select_head_blocking([], &w, &m).is_empty());
        assert!(select_easy([], &w, &m, 0).is_empty());
        assert!(select_conservative([], &w, &m, 0).is_empty());
    }
}
