//! Integration: the adaptive tuner against a real in-process serve
//! daemon, steered by the committed atlas artifact.
//!
//! The acceptance bar for the tune subsystem: starting the daemon on a
//! deliberately poor atlas row, the controller must (a) switch the
//! scheduler mid-trace through the public `policy set` op, (b) end the
//! trace with a better learned objective than the static baseline run
//! over the identical job stream, and (c) do both bit-reproducibly
//! under the daemon's virtual clock.

use jobsched_tune::{build_json, fit, parse_atlas, run_demo, DemoOptions, FitOptions, TunerConfig};

fn committed_atlas() -> jobsched_tune::AtlasDoc {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_atlas.json");
    let text = std::fs::read_to_string(path).expect("committed BENCH_atlas.json present");
    let doc = jobsched_sweep::json::parse(&text).expect("atlas parses as JSON");
    parse_atlas(&doc).expect("atlas is a well-formed bench-atlas document")
}

fn demo_opts() -> DemoOptions {
    DemoOptions {
        jobs: 300,
        initial: "ljf+none".into(),
        tuner: TunerConfig::default(),
        ..DemoOptions::default()
    }
}

#[test]
fn controller_switches_mid_trace_and_improves_the_learned_objective() {
    let atlas = committed_atlas();
    let fitted = fit(&atlas, &FitOptions::default());
    let outcome = run_demo(&atlas, &fitted, &demo_opts()).expect("demo runs");

    // (a) At least one live switch, strictly inside the trace.
    assert!(
        !outcome.tuned.switches.is_empty(),
        "controller never switched"
    );
    let first = &outcome.tuned.switches[0];
    assert_eq!(first.from, "ljf+none");
    assert!(first.at > 0 && first.at < outcome.tuned.snapshot.makespan);
    assert!(first.predicted_best < first.predicted_current);

    // The daemon really changed schedulers: its own metrics op reports
    // a different scheduler than the static run's.
    assert_ne!(
        outcome.tuned.final_scheduler,
        outcome.baseline.final_scheduler
    );
    assert_eq!(outcome.baseline.final_scheduler, "LJF+Listscheduler");

    // Both runs completed the whole trace (the §6.1 filter may trim the
    // generated job count below the requested 300; every admitted job
    // must reach a terminal state).
    let done = |s: &jobsched_metrics::MetricsSnapshot| s.jobs_finished + s.jobs_cancelled;
    assert_eq!(
        done(&outcome.tuned.snapshot),
        outcome.tuned.snapshot.jobs_submitted
    );
    assert_eq!(
        done(&outcome.baseline.snapshot),
        outcome.baseline.snapshot.jobs_submitted
    );
    assert!(outcome.tuned.snapshot.jobs_submitted >= 250);
    assert_eq!(
        outcome.tuned.snapshot.jobs_submitted,
        outcome.baseline.snapshot.jobs_submitted
    );

    // (b) The learned objective improved over the static baseline.
    assert!(
        outcome.tuned.objective < outcome.baseline.objective,
        "tuned {} vs baseline {}",
        outcome.tuned.objective,
        outcome.baseline.objective
    );
    assert!(outcome.improvement > 0.0);
}

#[test]
fn tuner_demo_is_bit_reproducible() {
    let atlas = committed_atlas();
    let fitted = fit(&atlas, &FitOptions::default());
    let a = run_demo(&atlas, &fitted, &demo_opts()).expect("first run");
    let b = run_demo(&atlas, &fitted, &demo_opts()).expect("second run");
    // Rendering to the artifact JSON compares every field — switches,
    // final metrics, objectives — with exact float formatting.
    let render = |o: &jobsched_tune::DemoOutcome| {
        build_json(atlas.scale, &fitted, None, Some(o)).to_string_pretty()
    };
    assert_eq!(render(&a), render(&b));
    assert_eq!(a.tuned.switches, b.tuned.switches);
}

#[test]
fn static_run_stays_on_the_initial_row() {
    let atlas = committed_atlas();
    let fitted = fit(&atlas, &FitOptions::default());
    let outcome = run_demo(&atlas, &fitted, &demo_opts()).expect("demo runs");
    assert!(outcome.baseline.switches.is_empty());
    assert_eq!(outcome.baseline.final_scheduler, "LJF+Listscheduler");
}
