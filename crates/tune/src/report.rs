//! Rendering the tune subsystem's artifacts: the `bench-tune/1` JSON
//! document (`BENCH_tune.json`) and the `TUNE.md` markdown report.
//!
//! Like the atlas renderer in `jobsched-sweep`, everything here is a
//! pure function of the computed results — same fit, same significance
//! aggregate, same demo outcome ⇒ bit-identical artifacts.

use crate::controller::Switch;
use crate::demo::DemoOutcome;
use crate::fit::Fit;
use crate::significance::Significance;
use jobsched_sweep::json::Json;

/// Schema tag of the JSON artifact (documented in `EXPERIMENTS.md`).
pub const TUNE_SCHEMA: &str = "bench-tune/1";

fn fit_json(fit: &Fit) -> Json {
    let groups: Vec<Json> = fit
        .groups
        .iter()
        .map(|g| {
            let inseparable: Vec<Json> = g
                .inseparable
                .iter()
                .map(|&(i, j)| {
                    Json::obj([
                        ("better", Json::UInt(i as u64)),
                        ("worse", Json::UInt(j as u64)),
                    ])
                })
                .collect();
            Json::obj([
                ("workload", Json::Str(g.workload.clone())),
                (
                    "order",
                    Json::Arr(g.order.iter().map(|&i| Json::UInt(i as u64)).collect()),
                ),
                ("inseparable", Json::Arr(inseparable)),
            ])
        })
        .collect();
    Json::obj([
        (
            "objectives",
            Json::Arr(fit.objectives.iter().cloned().map(Json::Str).collect()),
        ),
        (
            "weights",
            Json::Arr(fit.weights.iter().map(|&w| Json::Num(w)).collect()),
        ),
        ("violations", Json::UInt(fit.violations as u64)),
        ("evaluations", Json::UInt(fit.evaluations as u64)),
        ("groups", Json::Arr(groups)),
    ])
}

fn significance_json(sig: &Significance) -> Json {
    let rows: Vec<Json> = sig
        .rows
        .iter()
        .map(|r| {
            Json::obj([
                ("label", Json::Str(r.label.clone())),
                ("name", Json::Str(r.name.clone())),
                (
                    "mean",
                    Json::Arr(r.mean.iter().map(|&m| Json::Num(m)).collect()),
                ),
                (
                    "ci95",
                    Json::Arr(r.ci.iter().map(|&c| Json::Num(c)).collect()),
                ),
                ("front_count", Json::UInt(r.front_count as u64)),
                ("stable", Json::Bool(r.stable(sig.seeds))),
            ])
        })
        .collect();
    Json::obj([
        ("seeds", Json::UInt(sig.seeds as u64)),
        (
            "objectives",
            Json::Arr(sig.objectives.iter().cloned().map(Json::Str).collect()),
        ),
        ("rows", Json::Arr(rows)),
    ])
}

fn switch_json(s: &Switch) -> Json {
    Json::obj([
        ("at", Json::UInt(s.at)),
        ("from", Json::Str(s.from.clone())),
        ("to", Json::Str(s.to.clone())),
        ("predicted_current", Json::Num(s.predicted_current)),
        ("predicted_best", Json::Num(s.predicted_best)),
    ])
}

fn demo_json(demo: &DemoOutcome) -> Json {
    let run = |r: &crate::demo::DemoRun| {
        Json::obj([
            ("final_scheduler", Json::Str(r.final_scheduler.clone())),
            (
                "switches",
                Json::Arr(r.switches.iter().map(switch_json).collect()),
            ),
            ("objective", Json::Num(r.objective)),
            ("art", Json::Num(r.snapshot.art)),
            ("awrt", Json::Num(r.snapshot.awrt)),
            ("bounded_slowdown", Json::Num(r.snapshot.bounded_slowdown)),
            ("utilization", Json::Num(r.snapshot.utilization)),
            ("makespan", Json::UInt(r.snapshot.makespan)),
            ("jobs_finished", Json::UInt(r.snapshot.jobs_finished)),
        ])
    };
    Json::obj([
        (
            "objectives",
            Json::Arr(demo.objectives.iter().cloned().map(Json::Str).collect()),
        ),
        (
            "weights",
            Json::Arr(demo.weights.iter().map(|&w| Json::Num(w)).collect()),
        ),
        ("tuned", run(&demo.tuned)),
        ("baseline", run(&demo.baseline)),
        ("improvement", Json::Num(demo.improvement)),
    ])
}

/// Assemble the `bench-tune/1` document. `sig` and `demo` sections are
/// optional — `tune fit` alone still writes a valid document.
pub fn build_json(
    scale: (u64, u64, u64),
    fit: &Fit,
    sig: Option<&Significance>,
    demo: Option<&DemoOutcome>,
) -> Json {
    let mut fields = vec![
        ("schema", Json::Str(TUNE_SCHEMA.into())),
        (
            "scale",
            Json::obj([
                ("ctc_jobs", Json::UInt(scale.0)),
                ("synthetic_jobs", Json::UInt(scale.1)),
                ("seed", Json::UInt(scale.2)),
            ]),
        ),
        ("fit", fit_json(fit)),
    ];
    if let Some(s) = sig {
        fields.push(("significance", significance_json(s)));
    }
    if let Some(d) = demo {
        fields.push(("tuner", demo_json(d)));
    }
    Json::obj(fields)
}

fn fmt_g(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1000.0 || x.abs() < 0.01 {
        format!("{x:.3e}")
    } else {
        format!("{x:.4}")
    }
}

/// Render `TUNE.md`.
pub fn build_markdown(
    scale: (u64, u64, u64),
    fit: &Fit,
    sig: Option<&Significance>,
    demo: Option<&DemoOutcome>,
) -> String {
    let mut md = String::new();
    md.push_str("# TUNE — learning the objective from the scheduler atlas\n\n");
    md.push_str(&format!(
        "Source atlas scale: {} CTC jobs, {} synthetic jobs, seed {}.\n\n",
        scale.0, scale.1, scale.2
    ));

    md.push_str("## Learned scalarization\n\n");
    md.push_str(
        "Weights minimising Pareto-rank violations across all workload \
         groups (costs mean-normalised per axis, weights sum to 1):\n\n",
    );
    md.push_str("| objective | weight |\n|---|---:|\n");
    for (t, w) in fit.objectives.iter().zip(&fit.weights) {
        md.push_str(&format!("| {t} | {} |\n", fmt_g(*w)));
    }
    md.push_str(&format!(
        "\nRank violations at the optimum: **{}** ({} candidate evaluations).\n",
        fit.violations, fit.evaluations
    ));
    for g in &fit.groups {
        if g.inseparable.is_empty() {
            md.push_str(&format!(
                "\n- `{}`: ranks linearly separated — the induced total \
                 order agrees with every rank comparison.\n",
                g.workload
            ));
        } else {
            md.push_str(&format!(
                "\n- `{}`: {} rank pair(s) no linear scalarization of \
                 these axes separates:\n",
                g.workload,
                g.inseparable.len()
            ));
            for &(i, j) in &g.inseparable {
                md.push_str(&format!(
                    "  - row {i} outranks row {j} but scores no better\n"
                ));
            }
        }
    }

    if let Some(sig) = sig {
        md.push_str(&format!(
            "\n## Multi-seed significance ({} seeds)\n\n\
             Across-seed mean ± 95% CI per objective; `front` counts the \
             seeds whose 6-D Pareto front contains the row. Rows on the \
             front in some seeds but not all are **unstable** — their \
             atlas front membership is a draw-level accident.\n\n",
            sig.seeds
        ));
        md.push_str("| row | ");
        for o in &sig.objectives {
            md.push_str(&format!("{o} | "));
        }
        md.push_str("front |\n|---|");
        for _ in &sig.objectives {
            md.push_str("---:|");
        }
        md.push_str("---:|\n");
        for r in &sig.rows {
            md.push_str(&format!("| `{}` | ", r.label));
            for (m, c) in r.mean.iter().zip(&r.ci) {
                md.push_str(&format!("{} ± {} | ", fmt_g(*m), fmt_g(*c)));
            }
            let mark = if r.stable(sig.seeds) { "" } else { " ⚠" };
            md.push_str(&format!("{}/{}{} |\n", r.front_count, sig.seeds, mark));
        }
        let unstable = sig.unstable();
        if unstable.is_empty() {
            md.push_str("\nEvery front membership is seed-stable.\n");
        } else {
            md.push_str(&format!(
                "\n{} row(s) with seed-unstable front membership: {}.\n",
                unstable.len(),
                unstable
                    .iter()
                    .map(|r| format!("`{}`", r.label))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
    }

    if let Some(d) = demo {
        md.push_str("\n## Live tuner demonstration\n\n");
        md.push_str(&format!(
            "Identical CTC trace served twice under the virtual clock; \
             the tuned daemon lets the controller switch schedulers via \
             the `policy set` op, the baseline stays on the initial row. \
             Learned objective (streamable axes {}, weights {}):\n\n",
            d.objectives.join("/"),
            d.weights
                .iter()
                .map(|w| fmt_g(*w))
                .collect::<Vec<_>>()
                .join("/")
        ));
        md.push_str("| run | final scheduler | objective | ART | bounded slowdown |\n");
        md.push_str("|---|---|---:|---:|---:|\n");
        for (name, r) in [("tuned", &d.tuned), ("baseline", &d.baseline)] {
            md.push_str(&format!(
                "| {name} | {} | {} | {} | {} |\n",
                r.final_scheduler,
                fmt_g(r.objective),
                fmt_g(r.snapshot.art),
                fmt_g(r.snapshot.bounded_slowdown)
            ));
        }
        md.push_str(&format!(
            "\nImprovement of the learned objective: **{:.1}%**.\n",
            d.improvement * 100.0
        ));
        if d.tuned.switches.is_empty() {
            md.push_str("\nThe controller decided no switch.\n");
        } else {
            md.push_str("\nSwitches:\n\n");
            for s in &d.tuned.switches {
                md.push_str(&format!(
                    "- t={}: `{}` → `{}` (predicted {} → {})\n",
                    s.at,
                    s.from,
                    s.to,
                    fmt_g(s.predicted_current),
                    fmt_g(s.predicted_best)
                ));
            }
        }
    }
    md
}

/// Structural sanity of a finished tune run, mirroring the atlas's
/// `check_clean`: weights form a distribution, the reported violations
/// match the per-group lists, significance rows carry finite stats, and
/// the tuner demo actually switched and improved.
pub fn check_clean(
    fit: &Fit,
    sig: Option<&Significance>,
    demo: Option<&DemoOutcome>,
) -> Result<(), String> {
    let sum: f64 = fit.weights.iter().sum();
    if (sum - 1.0).abs() > 1e-9 || fit.weights.iter().any(|w| !(0.0..=1.0).contains(w)) {
        return Err(format!(
            "fit weights are not a distribution: {:?}",
            fit.weights
        ));
    }
    let listed: usize = fit.groups.iter().map(|g| g.inseparable.len()).sum();
    if listed != fit.violations {
        return Err(format!(
            "fit reports {} violations but lists {listed}",
            fit.violations
        ));
    }
    if let Some(sig) = sig {
        for r in &sig.rows {
            if r.mean.iter().chain(&r.ci).any(|x| !x.is_finite()) {
                return Err(format!("significance row '{}': non-finite stats", r.label));
            }
            if r.front_count > sig.seeds {
                return Err(format!(
                    "significance row '{}': front count {} > {} seeds",
                    r.label, r.front_count, sig.seeds
                ));
            }
        }
        if !sig.rows.iter().any(|r| r.front_count == sig.seeds) {
            return Err("no row is on the front in every seed".into());
        }
    }
    if let Some(d) = demo {
        if d.tuned.switches.is_empty() {
            return Err("tuner demo fired no switch".into());
        }
        if d.improvement <= 0.0 {
            return Err(format!(
                "tuner demo did not improve the learned objective ({} vs {})",
                d.tuned.objective, d.baseline.objective
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fit::{Fit, GroupFit};

    fn fit_fixture() -> Fit {
        Fit {
            objectives: vec!["art".into(), "bsld".into()],
            weights: vec![0.75, 0.25],
            violations: 1,
            evaluations: 99,
            groups: vec![GroupFit {
                workload: "ctc".into(),
                scalars: vec![1.0, 2.0, 3.0],
                order: vec![0, 1, 2],
                inseparable: vec![(1, 2)],
            }],
        }
    }

    #[test]
    fn json_document_has_the_schema_and_fit_sections() {
        let doc = build_json((100, 50, 7), &fit_fixture(), None, None);
        assert_eq!(
            doc.get("schema").and_then(|s| s.as_str()),
            Some("bench-tune/1")
        );
        let fit = doc.get("fit").unwrap();
        assert_eq!(fit.get("violations").and_then(|v| v.as_u64()), Some(1));
        assert!(doc.get("significance").is_none());
        assert!(doc.get("tuner").is_none());
        // Round-trips through the parser.
        let text = doc.to_string_pretty();
        let back = jobsched_sweep::json::parse(&text).unwrap();
        assert_eq!(
            back.get("schema").and_then(|s| s.as_str()),
            Some("bench-tune/1")
        );
    }

    #[test]
    fn markdown_mentions_weights_and_inseparable_pairs() {
        let md = build_markdown((100, 50, 7), &fit_fixture(), None, None);
        assert!(md.contains("| art | 0.7500 |"));
        assert!(md.contains("row 1 outranks row 2"));
    }

    #[test]
    fn check_clean_rejects_inconsistent_reports() {
        let mut f = fit_fixture();
        assert!(check_clean(&f, None, None).is_ok());
        f.violations = 5;
        assert!(check_clean(&f, None, None).is_err());
        f.violations = 1;
        f.weights = vec![0.9, 0.3];
        assert!(check_clean(&f, None, None).is_err());
    }
}
