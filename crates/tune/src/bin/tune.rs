//! The evaluation-subsystem driver: objective learning, multi-seed
//! significance, and the live tuner demonstration in one run.
//!
//! Reads the committed `bench-atlas/1` artifact, fits the scalarization
//! weights against its Pareto ranks, replays the atlas grid across N
//! workload resamplings for confidence intervals, then serves a CTC
//! trace twice through an in-process daemon — once with the learned
//! controller switching schedulers over the `policy set` op, once
//! static — and writes `BENCH_tune.json` (`bench-tune/1`, schema in
//! `EXPERIMENTS.md`) plus the `TUNE.md` report.
//!
//! Usage:
//!   tune [--smoke] [--atlas FILE] [--seeds N] [--no-significance]
//!        [--scale quick|standard|paper] [--jobs N] [--demo-jobs N]
//!        [--initial LABEL] [--out FILE] [--report FILE] [--cache DIR]
//!        [--assert-clean]
//!
//! `--smoke` is the CI slice: 2 significance seeds at quick scale, a
//! short tuner trace — minutes of wall-clock, same artifact schema.
//! `--seeds 0` / `--no-significance` skips the replication campaign
//! (the fit and tuner only need the atlas file). `--assert-clean`
//! applies the structural gate — weights form a distribution, reported
//! violations match the listed pairs, finite significance stats, and
//! the tuner must have switched *and* improved — and exits non-zero on
//! the first violation.

use jobsched_core::experiment::Scale;
use jobsched_sweep::SweepOptions;
use jobsched_tune::{
    build_json, build_markdown, check_clean, fit, parse_atlas, run_demo, run_significance,
    DemoOptions, FitOptions, TunerConfig,
};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    smoke: bool,
    atlas: String,
    seeds: usize,
    scale: Scale,
    scale_name: String,
    scale_explicit: bool,
    jobs: usize,
    demo_jobs: usize,
    initial: String,
    out: String,
    report: String,
    cache: Option<PathBuf>,
    assert_clean: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: tune [--smoke] [--atlas FILE] [--seeds N] [--no-significance] \
         [--scale quick|standard|paper] [--jobs N] [--demo-jobs N] \
         [--initial LABEL] [--out FILE] [--report FILE] [--cache DIR] \
         [--assert-clean]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        atlas: "BENCH_atlas.json".to_string(),
        seeds: 5,
        scale: Scale::standard(),
        scale_name: "standard".to_string(),
        scale_explicit: false,
        jobs: std::thread::available_parallelism().map_or(1, |n| n.get()),
        demo_jobs: 800,
        initial: "ljf+none".to_string(),
        out: "BENCH_tune.json".to_string(),
        report: "TUNE.md".to_string(),
        cache: None,
        assert_clean: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |argv: &[String], i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--smoke" => args.smoke = true,
            "--assert-clean" => args.assert_clean = true,
            "--no-significance" => args.seeds = 0,
            "--atlas" => args.atlas = value(&argv, &mut i),
            "--seeds" => {
                args.seeds = value(&argv, &mut i).parse().unwrap_or_else(|_| usage());
            }
            "--scale" => {
                args.scale_explicit = true;
                args.scale_name = value(&argv, &mut i);
                args.scale = match args.scale_name.as_str() {
                    "quick" => Scale::quick(),
                    "standard" => Scale::standard(),
                    "paper" => Scale::paper(),
                    _ => usage(),
                };
            }
            "--jobs" => {
                args.jobs = value(&argv, &mut i).parse().unwrap_or_else(|_| usage());
                if args.jobs == 0 {
                    usage();
                }
            }
            "--demo-jobs" => {
                args.demo_jobs = value(&argv, &mut i).parse().unwrap_or_else(|_| usage());
                if args.demo_jobs == 0 {
                    usage();
                }
            }
            "--initial" => args.initial = value(&argv, &mut i),
            "--out" => args.out = value(&argv, &mut i),
            "--report" => args.report = value(&argv, &mut i),
            "--cache" => args.cache = Some(PathBuf::from(value(&argv, &mut i))),
            _ => usage(),
        }
        i += 1;
    }
    if args.smoke {
        if !args.scale_explicit {
            args.scale = Scale::quick();
            args.scale_name = "quick".to_string();
        }
        args.seeds = args.seeds.min(2);
        args.demo_jobs = args.demo_jobs.min(300);
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();

    // 1. Objective learning from the committed atlas.
    let text = match std::fs::read_to_string(&args.atlas) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("tune: cannot read {}: {e}", args.atlas);
            return ExitCode::FAILURE;
        }
    };
    let doc = match jobsched_sweep::json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("tune: {} is not valid JSON: {e:?}", args.atlas);
            return ExitCode::FAILURE;
        }
    };
    let atlas = match parse_atlas(&doc) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("tune: {} is not a usable atlas: {e}", args.atlas);
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "tune: atlas '{}' — {} workload group(s), {} objectives, {} rows",
        args.atlas,
        atlas.groups.len(),
        atlas.groups[0].objectives.len(),
        atlas.groups[0].points.len()
    );
    let fitted = fit(&atlas, &FitOptions::default());
    eprintln!(
        "tune: learned weights {:?} over {:?} — {} rank violation(s), {} evaluations",
        fitted
            .weights
            .iter()
            .map(|w| (w * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>(),
        fitted.objectives,
        fitted.violations,
        fitted.evaluations
    );
    for g in &fitted.groups {
        if !g.inseparable.is_empty() {
            eprintln!(
                "tune: {} workload — {} rank pair(s) not linearly separable",
                g.workload,
                g.inseparable.len()
            );
        }
    }

    // 2. Multi-seed significance through the cached sweep runner.
    let sig = if args.seeds == 0 {
        None
    } else {
        eprintln!(
            "tune: significance campaign — {} seed(s) at {} scale on {} thread(s)",
            args.seeds, args.scale_name, args.jobs
        );
        let opts = SweepOptions {
            jobs: args.jobs,
            out: args.cache.clone(),
            resume: args.cache.is_some(),
            progress: true,
        };
        match run_significance(args.scale, args.seeds, &opts) {
            Ok(s) => {
                eprintln!(
                    "tune: significance — {} simulated, {} from cache, {} unstable front row(s)",
                    s.simulated,
                    s.cached,
                    s.unstable().len()
                );
                Some(s)
            }
            Err(e) => {
                eprintln!("tune: significance campaign failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    // 3. The live tuner demonstration.
    let demo_opts = DemoOptions {
        jobs: args.demo_jobs,
        initial: args.initial.clone(),
        tuner: TunerConfig::default(),
        ..DemoOptions::default()
    };
    let demo = match run_demo(&atlas, &fitted, &demo_opts) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("tune: tuner demo failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "tune: tuner {} → {} in {} switch(es); learned objective {:.4} vs static {:.4} ({:+.1}%)",
        args.initial,
        demo.tuned.final_scheduler,
        demo.tuned.switches.len(),
        demo.tuned.objective,
        demo.baseline.objective,
        -demo.improvement * 100.0
    );

    if args.assert_clean {
        if let Err(msg) = check_clean(&fitted, sig.as_ref(), Some(&demo)) {
            eprintln!("tune: --assert-clean FAILED: {msg}");
            return ExitCode::FAILURE;
        }
        eprintln!("tune: --assert-clean passed");
    }

    let json = build_json(atlas.scale, &fitted, sig.as_ref(), Some(&demo));
    let text = json.to_string_pretty();
    // The artifact must stay consumable by the repo's own JSON reader
    // (CI re-checks with json_check).
    jobsched_sweep::json::parse(&text).expect("tune JSON must parse");
    if let Err(e) = std::fs::write(&args.out, text + "\n") {
        eprintln!("tune: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    let md = build_markdown(atlas.scale, &fitted, sig.as_ref(), Some(&demo));
    if let Err(e) = std::fs::write(&args.report, md) {
        eprintln!("tune: cannot write {}: {e}", args.report);
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {} and {}", args.out, args.report);
    ExitCode::SUCCESS
}
