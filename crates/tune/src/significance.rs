//! Multi-seed significance: is the atlas's Pareto structure a property
//! of the *policies* or of one lucky workload draw?
//!
//! The atlas measures every algorithm row on a single resampling of the
//! probabilistic workload. This module replays the same 43-row ×
//! 6-objective grid across `seeds` independent resamplings (via
//! [`Campaign::significance`], through the cached sweep runner — cells
//! already simulated for the atlas are cache hits), then reports per
//! (row, objective) the across-seed mean and a normal-approximation
//! 95% confidence half-width, and per row how often it lands on the
//! six-dimensional Pareto front. A row on the front in *some* seeds but
//! not others is flagged unstable: its atlas front membership is a
//! draw-level accident, not a policy-level fact.

use jobsched_core::experiment::{EvalTable, Scale};
use jobsched_metrics::{pareto_front, Point};
use jobsched_sweep::grid::{backfill_tag, policy_tag};
use jobsched_sweep::{run_campaign, Campaign, SweepOptions};
use std::io;

/// Per-row across-seed statistics.
#[derive(Clone, Debug)]
pub struct RowStats {
    /// Serve-protocol scheduler label (`policy+backfill`).
    pub label: String,
    /// Display name (`SJF+EASY-Backfilling`, ...).
    pub name: String,
    /// Across-seed mean cost per objective (atlas objective order).
    pub mean: Vec<f64>,
    /// 95% confidence half-width per objective: `1.96·s/√N` with the
    /// sample standard deviation `s`. Zero when `seeds == 1`.
    pub ci: Vec<f64>,
    /// In how many seeds this row sat on the 6-D Pareto front.
    pub front_count: usize,
}

impl RowStats {
    /// Front membership is seed-stable: the row is on the front in
    /// every seed or in none.
    pub fn stable(&self, seeds: usize) -> bool {
        self.front_count == 0 || self.front_count == seeds
    }
}

/// Outcome of a significance campaign.
#[derive(Clone, Debug)]
pub struct Significance {
    /// Number of independent workload resamplings.
    pub seeds: usize,
    /// Objective tags spanning the cost axes (atlas order).
    pub objectives: Vec<String>,
    /// One entry per atlas matrix row, matrix order.
    pub rows: Vec<RowStats>,
    /// Cells simulated fresh this run.
    pub simulated: usize,
    /// Cells served from the result cache.
    pub cached: usize,
}

impl Significance {
    /// Rows whose front membership varies across seeds.
    pub fn unstable(&self) -> Vec<&RowStats> {
        self.rows.iter().filter(|r| !r.stable(self.seeds)).collect()
    }
}

fn mean_ci(samples: &[f64]) -> (f64, f64) {
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    if samples.len() < 2 {
        return (mean, 0.0);
    }
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, 1.96 * var.sqrt() / n.sqrt())
}

/// Aggregate the per-seed tables of a finished significance campaign.
///
/// `tables` must be the [`Campaign::significance`] output: seed-major,
/// objective-minor (`seeds × objectives` tables of identical row order).
pub fn aggregate(tables: &[EvalTable], seeds: usize, objectives: &[String]) -> Significance {
    let dims = objectives.len();
    assert_eq!(tables.len(), seeds * dims, "seed-major table layout");
    let rows_n = tables[0].cells.len();
    for t in tables {
        assert_eq!(t.cells.len(), rows_n, "ragged significance tables");
    }

    // Per-seed Pareto fronts over the full cost space.
    let mut front_count = vec![0usize; rows_n];
    for k in 0..seeds {
        let points: Vec<Point> = (0..rows_n)
            .map(|r| {
                let costs = (0..dims)
                    .map(|j| tables[k * dims + j].cells[r].cost)
                    .collect();
                Point::new(format!("row{r}"), costs)
            })
            .collect();
        for idx in pareto_front(&points) {
            front_count[idx] += 1;
        }
    }

    let rows = (0..rows_n)
        .map(|r| {
            let spec = tables[0].cells[r].spec();
            // The same matrix row must sit at the same index in every
            // table, or the per-seed samples would mix policies.
            for t in tables {
                assert_eq!(t.cells[r].spec(), spec, "row order drift across tables");
            }
            let mut mean = Vec::with_capacity(dims);
            let mut ci = Vec::with_capacity(dims);
            for j in 0..dims {
                let samples: Vec<f64> = (0..seeds)
                    .map(|k| tables[k * dims + j].cells[r].cost)
                    .collect();
                let (m, c) = mean_ci(&samples);
                mean.push(m);
                ci.push(c);
            }
            RowStats {
                label: format!("{}+{}", policy_tag(spec.kind), backfill_tag(spec.backfill)),
                name: spec.name(),
                mean,
                ci,
                front_count: front_count[r],
            }
        })
        .collect();

    Significance {
        seeds,
        objectives: objectives.to_vec(),
        rows,
        simulated: 0,
        cached: 0,
    }
}

/// Run the significance campaign at `scale` across `seeds` resamplings
/// and aggregate it. Heavy: `seeds × 258` simulations at the given
/// scale, minus whatever the cache already holds.
pub fn run_significance(
    scale: Scale,
    seeds: usize,
    sweep: &SweepOptions,
) -> io::Result<Significance> {
    let campaign = Campaign::significance(scale, seeds);
    let outcome = run_campaign(&campaign, sweep)?;
    let objectives: Vec<String> = Campaign::ATLAS_OBJECTIVES
        .iter()
        .map(|(tag, _, _)| tag.to_string())
        .collect();
    let mut sig = aggregate(&outcome.tables, seeds, &objectives);
    sig.simulated = outcome.simulated;
    sig.cached = outcome.cached;
    Ok(sig)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            ctc_jobs: 120,
            synthetic_jobs: 80,
            seed: 42,
        }
    }

    #[test]
    fn two_seed_campaign_aggregates() {
        let sig = run_significance(tiny(), 2, &SweepOptions::default()).unwrap();
        assert_eq!(sig.seeds, 2);
        assert_eq!(sig.objectives.len(), 6);
        assert!(!sig.rows.is_empty());
        for r in &sig.rows {
            assert_eq!(r.mean.len(), 6);
            assert_eq!(r.ci.len(), 6);
            assert!(r.mean.iter().all(|m| m.is_finite()));
            assert!(r.ci.iter().all(|c| c.is_finite() && *c >= 0.0));
            assert!(r.front_count <= 2);
            // Label round-trips through the serve spec grammar.
            assert!(jobsched_serve::SchedulerSpec::parse(&r.label).is_ok());
        }
        // Someone is on the front in every seed.
        assert!(sig.rows.iter().any(|r| r.front_count == 2));
        // Unstable rows are exactly the 0 < count < seeds ones.
        for r in sig.unstable() {
            assert!(r.front_count > 0 && r.front_count < 2);
        }
    }

    #[test]
    fn single_seed_has_zero_ci_and_is_trivially_stable() {
        let sig = run_significance(tiny(), 1, &SweepOptions::default()).unwrap();
        assert!(sig.rows.iter().all(|r| r.ci.iter().all(|&c| c == 0.0)));
        assert!(sig.unstable().is_empty());
    }

    #[test]
    fn mean_ci_basics() {
        let (m, c) = mean_ci(&[4.0]);
        assert_eq!((m, c), (4.0, 0.0));
        let (m, c) = mean_ci(&[1.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        // s = sqrt(2), ci = 1.96·sqrt(2)/sqrt(2) = 1.96.
        assert!((c - 1.96).abs() < 1e-9);
    }
}
