//! Learning the scalarization: which weight vector over the atlas's
//! objective axes reproduces the per-workload Pareto ranks?
//!
//! The paper's administrator picks *one* objective per regime; the
//! atlas instead measures every policy under six. This module asks the
//! inverse question: if the non-domination ranks of the atlas are the
//! ground-truth preference order, which linear scalarization
//! `s = Σ wⱼ·cⱼ` agrees with it best? The loss is the number of *rank
//! violations* — ordered pairs `(i, j)` where point `i` outranks `j`
//! (strictly better non-domination layer) yet scores no better
//! (`sᵢ ≥ sⱼ`) — summed over workload groups, so one weight vector must
//! explain every workload at once.
//!
//! Search is deterministic and derivative-free: a coarse grid over the
//! weight simplex seeds coordinate descent (per-coordinate multiplier
//! ladder, strict-improvement steps only). Costs are normalised by
//! their per-(group, objective) mean first, so axes with large units
//! (response times in seconds) cannot drown dimensionless ones
//! (slowdowns). The loss is invariant under scaling the whole vector,
//! so the result is reported normalised to `Σ wⱼ = 1`.
//!
//! Rank layers are not always linearly separable — a front of mutually
//! non-dominated points has no order for *any* weights to violate, but
//! deeper layers can interleave. Whatever pairs survive at the optimum
//! are reported per group as [`GroupFit::inseparable`], never silently
//! dropped.

use crate::atlas::AtlasDoc;
use jobsched_metrics::pareto::{order_violations, rank_violations, scalarize};
use jobsched_metrics::Point;

/// Search configuration. The defaults are what the `tune` bin runs.
#[derive(Clone, Debug)]
pub struct FitOptions {
    /// Per-coordinate grid levels seeding the search (the all-zero
    /// combination is skipped).
    pub levels: Vec<f64>,
    /// Maximum coordinate-descent sweeps after the best grid start.
    pub max_rounds: usize,
}

impl Default for FitOptions {
    fn default() -> Self {
        FitOptions {
            levels: vec![0.0, 0.25, 0.5, 1.0],
            max_rounds: 40,
        }
    }
}

/// One workload group's view of the fitted scalarization.
#[derive(Clone, Debug)]
pub struct GroupFit {
    /// Workload kind tag.
    pub workload: String,
    /// Scalarized cost per point (normalised axes), atlas row order.
    pub scalars: Vec<f64>,
    /// Induced total order: point indices sorted by scalar (ties by
    /// atlas row order).
    pub order: Vec<usize>,
    /// Rank-inconsistent pairs `(i, j)` surviving at the optimum:
    /// `i` outranks `j` but scores no better. Empty = the ranks are
    /// linearly separated for this workload.
    pub inseparable: Vec<(usize, usize)>,
}

/// The learned scalarization.
#[derive(Clone, Debug)]
pub struct Fit {
    /// Objective tags, parallel to `weights`.
    pub objectives: Vec<String>,
    /// Learned weights, normalised to sum 1.
    pub weights: Vec<f64>,
    /// Total rank violations across groups at the optimum.
    pub violations: usize,
    /// Number of candidate evaluations the search spent.
    pub evaluations: usize,
    /// Per-workload induced orders and surviving violations.
    pub groups: Vec<GroupFit>,
}

/// Per-(group, objective)-mean normalised copies of the atlas points.
fn normalised_groups(atlas: &AtlasDoc) -> Vec<Vec<Point>> {
    atlas
        .groups
        .iter()
        .map(|g| {
            let d = g.objectives.len();
            let n = g.points.len() as f64;
            let means: Vec<f64> = (0..d)
                .map(|j| {
                    let m = g.points.iter().map(|p| p.costs[j]).sum::<f64>() / n;
                    // A degenerate all-zero axis (e.g. zero variance
                    // everywhere) normalises to itself.
                    if m > 0.0 {
                        m
                    } else {
                        1.0
                    }
                })
                .collect();
            g.points
                .iter()
                .map(|p| {
                    Point::new(
                        p.label.clone(),
                        p.costs.iter().zip(&means).map(|(c, m)| c / m).collect(),
                    )
                })
                .collect()
        })
        .collect()
}

fn loss(groups: &[Vec<Point>], ranks: &[Vec<usize>], weights: &[f64]) -> usize {
    groups
        .iter()
        .zip(ranks)
        .map(|(points, ranks)| {
            let scalars: Vec<f64> = points.iter().map(|p| scalarize(p, weights)).collect();
            rank_violations(ranks, &scalars).len()
        })
        .sum()
}

/// Enumerate every `levels`-valued weight vector (minus all-zero) in
/// lexicographic order — the deterministic seed set of the search.
fn grid_starts(levels: &[f64], dims: usize) -> Vec<Vec<f64>> {
    let mut out = Vec::new();
    let mut idx = vec![0usize; dims];
    loop {
        let w: Vec<f64> = idx.iter().map(|&i| levels[i]).collect();
        if w.iter().any(|&x| x > 0.0) {
            out.push(w);
        }
        // Odometer increment.
        let mut d = dims;
        loop {
            if d == 0 {
                return out;
            }
            d -= 1;
            idx[d] += 1;
            if idx[d] < levels.len() {
                break;
            }
            idx[d] = 0;
        }
    }
}

/// Learn the scalarization weights for `atlas`.
pub fn fit(atlas: &AtlasDoc, opts: &FitOptions) -> Fit {
    let dims = atlas.groups[0].objectives.len();
    let groups = normalised_groups(atlas);
    let ranks: Vec<Vec<usize>> = atlas.groups.iter().map(|g| g.ranks.clone()).collect();
    let mut evaluations = 0usize;
    let mut eval = |w: &[f64]| {
        evaluations += 1;
        loss(&groups, &ranks, w)
    };

    // Phase 1: coarse grid. First-best wins ties (stable order).
    let mut best = vec![1.0; dims];
    let mut best_loss = eval(&best);
    for w in grid_starts(&opts.levels, dims) {
        let l = eval(&w);
        if l < best_loss {
            best_loss = l;
            best = w;
        }
    }

    // Phase 2: coordinate descent on a multiplier ladder; strict
    // improvements only, so the sweep terminates and ties cannot cycle.
    const LADDER: [f64; 6] = [0.25, 0.5, 0.8, 1.25, 2.0, 4.0];
    for _ in 0..opts.max_rounds {
        if best_loss == 0 {
            break;
        }
        let mut improved = false;
        for j in 0..dims {
            let base = if best[j] > 0.0 { best[j] } else { 0.125 };
            for f in LADDER {
                let mut cand = best.clone();
                cand[j] = base * f;
                let l = eval(&cand);
                if l < best_loss {
                    best_loss = l;
                    best = cand;
                    improved = true;
                }
            }
            // Dropping the axis entirely is also a move (unless it
            // would zero the vector).
            if best[j] > 0.0 && best.iter().filter(|&&x| x > 0.0).count() > 1 {
                let mut cand = best.clone();
                cand[j] = 0.0;
                let l = eval(&cand);
                if l < best_loss {
                    best_loss = l;
                    best = cand;
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }

    // Normalise for the report; the loss is scale-invariant.
    let total: f64 = best.iter().sum();
    let weights: Vec<f64> = best.iter().map(|w| w / total).collect();

    let group_fits: Vec<GroupFit> = atlas
        .groups
        .iter()
        .zip(&groups)
        .map(|(g, points)| {
            let scalars: Vec<f64> = points.iter().map(|p| scalarize(p, &weights)).collect();
            // Non-negative weights can never invert a strict dominance;
            // the pinned invariant below documents why `inseparable`
            // only ever holds rank (not dominance) inconsistencies.
            debug_assert_eq!(order_violations(points, &scalars), None);
            let inseparable = rank_violations(&g.ranks, &scalars);
            let mut order: Vec<usize> = (0..points.len()).collect();
            order.sort_by(|&a, &b| scalars[a].total_cmp(&scalars[b]).then(a.cmp(&b)));
            GroupFit {
                workload: g.workload.clone(),
                scalars,
                order,
                inseparable,
            }
        })
        .collect();
    let violations = group_fits.iter().map(|g| g.inseparable.len()).sum();
    assert_eq!(violations, best_loss, "report must match the optimum");

    Fit {
        objectives: atlas.groups[0].objectives.clone(),
        weights,
        violations,
        evaluations,
        groups: group_fits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atlas::{parse_atlas, AtlasGroup};
    use jobsched_metrics::{pareto_front, pareto_ranks};

    type GroupSpec<'a> = (&'a str, Vec<&'a str>, Vec<Vec<f64>>);

    fn doc_from(groups: Vec<GroupSpec<'_>>) -> AtlasDoc {
        AtlasDoc {
            schema: "bench-atlas/1".into(),
            scale: (0, 0, 0),
            groups: groups
                .into_iter()
                .map(|(workload, objs, costs)| {
                    let points: Vec<Point> = costs
                        .into_iter()
                        .enumerate()
                        .map(|(i, c)| Point::new(format!("p{i}"), c))
                        .collect();
                    let ranks = pareto_ranks(&points);
                    let front = pareto_front(&points);
                    AtlasGroup {
                        workload: workload.into(),
                        objectives: objs.into_iter().map(str::to_string).collect(),
                        names: (0..points.len()).map(|i| format!("P{i}")).collect(),
                        points,
                        ranks,
                        front,
                    }
                })
                .collect(),
        }
    }

    #[test]
    fn separable_ranks_fit_to_zero_violations() {
        // Second axis decides the layering; any positive weight pair
        // with enough mass on axis 1 separates it.
        let atlas = doc_from(vec![(
            "ctc",
            vec!["art", "bsld"],
            vec![
                vec![1.0, 1.0],
                vec![2.0, 2.0],
                vec![3.0, 3.0],
                vec![4.0, 4.0],
            ],
        )]);
        let f = fit(&atlas, &FitOptions::default());
        assert_eq!(f.violations, 0);
        assert!(f.groups[0].inseparable.is_empty());
        assert_eq!(f.groups[0].order, vec![0, 1, 2, 3]);
        let sum: f64 = f.weights.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn axis_weighting_is_learned() {
        // Rank layers follow axis 0; axis 1 is anti-correlated noise.
        // Separating the layers requires concentrating weight on axis 0.
        let atlas = doc_from(vec![(
            "ctc",
            vec!["art", "bsld"],
            vec![
                vec![1.0, 5.0],  // rank 1 (incomparable with p1)
                vec![10.0, 1.0], // rank 1
                vec![2.0, 6.0],  // dominated by p0
                vec![20.0, 2.0], // dominated by p1
            ],
        )]);
        let f = fit(&atlas, &FitOptions::default());
        assert_eq!(f.violations, 0, "weights {:?}", f.weights);
        // Both rank-1 points must scalarize below both rank-2 points.
        let g = &f.groups[0];
        assert!(g.scalars[0] < g.scalars[2] && g.scalars[0] < g.scalars[3]);
        assert!(g.scalars[1] < g.scalars[2] && g.scalars[1] < g.scalars[3]);
    }

    #[test]
    fn inseparable_pairs_are_reported_not_hidden() {
        // p0 and p1 are mutually non-dominated (both rank 1), p2 is
        // dominated by p0 only — but p1's costs are both *higher* than
        // p2's on one axis in a crossed pattern making rank 1 vs rank 2
        // impossible to separate linearly: p1 = (10, 1), p2 = (2, 6)
        // with p2 dominated by p0 = (1, 5). Any weights scoring p1
        // below p2 need w0·10 + w1 < w0·2 + w1·6 ⇒ 8·w0 < 5·w1, and
        // p0 < p2 always holds; but then p3 = (1.5, 5.9) (rank 2,
        // dominated by p0) must also beat p1... construct a genuine
        // crossing instead: two rank-2 points on opposite sides.
        let atlas = doc_from(vec![(
            "ctc",
            vec!["art", "bsld"],
            vec![
                vec![1.0, 10.0], // rank 1
                vec![10.0, 1.0], // rank 1
                vec![1.5, 10.5], // rank 2, hugs p0
                vec![10.5, 1.5], // rank 2, hugs p1
            ],
        )]);
        let f = fit(&atlas, &FitOptions::default());
        // p0 must beat p3 and p1 must beat p2: w·(1,10) < w·(10.5,1.5)
        // and w·(10,1) < w·(1.5,10.5) ⇒ both differences constrain the
        // weight ratio from opposite sides but remain satisfiable
        // (symmetric weights do it) — so this *is* separable; the
        // learner must find it.
        assert_eq!(f.violations, 0, "weights {:?}", f.weights);

        // Now make it impossible: a rank-2 point that undercuts a
        // rank-1 point on *both* axes can never score worse — wait,
        // that would dominate it. True inseparability needs ≥2 groups
        // with contradictory orderings of the same cost pattern.
        let atlas = doc_from(vec![
            (
                "ctc",
                vec!["art", "bsld"],
                // Layering follows axis 0 (axis 1 constant).
                vec![vec![1.0, 1.0], vec![2.0, 1.0], vec![1.5, 1.2]],
            ),
            (
                "probabilistic",
                vec!["art", "bsld"],
                // Same pattern with axes swapped: layering follows
                // axis 1, and the rank-2 point sits where the ctc
                // group's ordering puts it *between* the rank-1s.
                vec![vec![1.0, 1.0], vec![1.0, 2.0], vec![1.2, 1.5]],
            ),
        ]);
        let f = fit(&atlas, &FitOptions::default());
        // Whatever the outcome, every surviving violation must be
        // listed under its group with valid indices.
        let listed: usize = f.groups.iter().map(|g| g.inseparable.len()).sum();
        assert_eq!(listed, f.violations);
        for g in &f.groups {
            for &(i, j) in &g.inseparable {
                assert!(i < g.scalars.len() && j < g.scalars.len());
            }
        }
    }

    #[test]
    fn fit_is_deterministic() {
        let atlas = doc_from(vec![(
            "ctc",
            vec!["art", "awrt", "bsld"],
            vec![
                vec![1.0, 9.0, 2.0],
                vec![5.0, 1.0, 8.0],
                vec![2.0, 8.0, 3.0],
                vec![6.0, 2.0, 9.0],
                vec![9.0, 9.0, 9.0],
            ],
        )]);
        let a = fit(&atlas, &FitOptions::default());
        let b = fit(&atlas, &FitOptions::default());
        assert_eq!(a.weights, b.weights);
        assert_eq!(a.violations, b.violations);
        assert_eq!(a.evaluations, b.evaluations);
        assert_eq!(a.groups[0].order, b.groups[0].order);
    }

    #[test]
    fn fit_runs_on_a_real_atlas_document() {
        // The committed artifact itself, when present in the repo root.
        let Ok(text) = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_atlas.json"
        )) else {
            return;
        };
        let doc = jobsched_json::parse(&text).expect("committed atlas parses");
        let atlas = parse_atlas(&doc).expect("committed atlas is well-formed");
        let f = fit(&atlas, &FitOptions::default());
        assert_eq!(f.objectives.len(), atlas.groups[0].objectives.len());
        assert!(f.weights.iter().all(|&w| (0.0..=1.0).contains(&w)));
        // Every group's induced order is a permutation.
        for g in &f.groups {
            let mut seen = g.order.clone();
            seen.sort_unstable();
            assert_eq!(seen, (0..g.scalars.len()).collect::<Vec<_>>());
        }
    }
}
