//! The tuner demonstration: drive an in-process serve [`Engine`] under
//! its virtual clock, poll the `metrics` op on a fixed cadence, feed
//! every snapshot to the [`Controller`], and apply whatever `policy set`
//! switches it decides — then run the identical trace again with the
//! controller muted and compare the learned objective.
//!
//! Everything speaks the daemon's public protocol: submissions, time
//! advancement, metric polling and the policy switch all go through
//! [`Request`]s, so the demo exercises exactly the surface a remote
//! tuner process would. Under the virtual clock the pair of runs is
//! bit-reproducible.

use crate::atlas::AtlasDoc;
use crate::controller::{Controller, Switch, TunerConfig};
use crate::fit::Fit;
use jobsched_metrics::MetricsSnapshot;
use jobsched_serve::engine::Engine;
use jobsched_serve::protocol::Request;
use jobsched_serve::{SchedulerSpec, ServeConfig};
use jobsched_sweep::json::Json;
use jobsched_sweep::WorkloadSpec;
use jobsched_workload::Time;

/// Demo parameters.
#[derive(Clone, Debug)]
pub struct DemoOptions {
    /// CTC-model jobs to stream through the daemon.
    pub jobs: usize,
    /// Workload generator seed.
    pub seed: u64,
    /// Metrics polling cadence, simulated seconds.
    pub poll: Time,
    /// Scheduler label the daemon starts on (an atlas row — pick a poor
    /// one to give the tuner something to do).
    pub initial: String,
    /// Atlas workload group steering the controller ("ctc").
    pub workload: String,
    /// Control-loop parameters.
    pub tuner: TunerConfig,
}

impl Default for DemoOptions {
    fn default() -> Self {
        DemoOptions {
            jobs: 300,
            seed: 1999,
            poll: 900,
            initial: "ljf+none".into(),
            workload: "ctc".into(),
            tuner: TunerConfig::default(),
        }
    }
}

/// One completed daemon run.
#[derive(Clone, Debug)]
pub struct DemoRun {
    /// Scheduler display name the daemon reported at the end.
    pub final_scheduler: String,
    /// Switches the controller fired (empty for the static run).
    pub switches: Vec<Switch>,
    /// Final cumulative metrics.
    pub snapshot: MetricsSnapshot,
    /// Learned objective over the final metrics (lower is better).
    pub objective: f64,
}

/// Tuned-vs-static comparison.
#[derive(Clone, Debug)]
pub struct DemoOutcome {
    /// The run with the controller in the loop.
    pub tuned: DemoRun,
    /// The identical trace under the static initial scheduler.
    pub baseline: DemoRun,
    /// Observable objective tags the controller steered by.
    pub objectives: Vec<String>,
    /// Restricted, renormalised weights over `objectives`.
    pub weights: Vec<f64>,
    /// Relative improvement of the learned objective,
    /// `(baseline − tuned) / baseline`.
    pub improvement: f64,
}

fn expect_ok(reply: &Json, what: &str) -> Result<(), String> {
    match reply.get("ok").and_then(|v| v.as_bool()) {
        Some(true) => Ok(()),
        _ => Err(format!(
            "daemon rejected {what}: {}",
            reply.to_string_compact()
        )),
    }
}

fn num(reply: &Json, key: &str) -> Result<f64, String> {
    reply
        .get(key)
        .and_then(|v| v.as_f64())
        .ok_or_else(|| format!("metrics reply missing '{key}'"))
}

fn uint(reply: &Json, key: &str) -> Result<u64, String> {
    reply
        .get(key)
        .and_then(|v| v.as_u64())
        .ok_or_else(|| format!("metrics reply missing '{key}'"))
}

/// Rebuild a [`MetricsSnapshot`] from a `metrics` reply.
fn snapshot_of(reply: &Json) -> Result<MetricsSnapshot, String> {
    Ok(MetricsSnapshot {
        jobs_submitted: uint(reply, "jobs_submitted")?,
        jobs_started: uint(reply, "jobs_started")?,
        jobs_finished: uint(reply, "jobs_finished")?,
        jobs_cancelled: uint(reply, "jobs_cancelled")?,
        art: num(reply, "art")?,
        awrt: num(reply, "awrt")?,
        bounded_slowdown: num(reply, "bounded_slowdown")?,
        utilization: num(reply, "utilization")?,
        makespan: uint(reply, "makespan")?,
    })
}

fn run_one(
    atlas: &AtlasDoc,
    fit: &Fit,
    opts: &DemoOptions,
    adaptive: bool,
) -> Result<DemoRun, String> {
    let workload = WorkloadSpec::Ctc {
        jobs: opts.jobs,
        seed: opts.seed,
    }
    .generate();
    let mut controller = Controller::new(atlas, fit, &opts.workload, &opts.initial, opts.tuner)?;

    let mut engine = Engine::new(ServeConfig {
        machine_nodes: 430, // the full CTC machine: every trace job fits
        scheduler: SchedulerSpec::parse(&opts.initial)?,
        queue_bound: opts.jobs + 16,
        virtual_clock: true,
        ..ServeConfig::default()
    });
    let mut handle = |req: Request, what: &str| -> Result<Json, String> {
        let (reply, _) = engine.handle(req);
        expect_ok(&reply, what)?;
        Ok(reply)
    };

    let mut horizon = 0;
    for job in workload.jobs() {
        horizon = horizon.max(job.submit);
        handle(
            Request::Submit {
                id: None,
                at: Some(job.submit),
                nodes: job.nodes,
                requested: job.requested_time,
                runtime: job.runtime,
                user: job.user,
            },
            "submit",
        )?;
    }
    let total = workload.jobs().len() as u64;

    // Poll until every job finished. The cadence — and therefore the
    // observation sequence — is identical for both runs.
    let mut t = 0;
    let mut snap;
    loop {
        t += opts.poll;
        handle(Request::Advance { to: Some(t) }, "advance")?;
        let reply = handle(Request::Metrics, "metrics")?;
        snap = snapshot_of(&reply)?;
        if let Some(label) = controller.observe(t, &snap) {
            if adaptive {
                handle(
                    Request::Policy {
                        force: None,
                        list: false,
                        set: Some(label),
                    },
                    "policy set",
                )?;
            }
        }
        if snap.jobs_finished + snap.jobs_cancelled >= total && t >= horizon {
            break;
        }
        if t > horizon + 400 * 24 * 3600 {
            return Err(format!(
                "demo did not converge: {}/{total} jobs finished by t={t}",
                snap.jobs_finished
            ));
        }
    }
    // Drain any queued residue and take the final reading.
    handle(Request::Advance { to: None }, "drain")?;
    let reply = handle(Request::Metrics, "metrics")?;
    snap = snapshot_of(&reply)?;
    let final_scheduler = reply
        .get("scheduler")
        .and_then(|v| v.as_str())
        .ok_or("metrics reply missing 'scheduler'")?
        .to_string();
    Ok(DemoRun {
        final_scheduler,
        switches: if adaptive {
            controller.switches.clone()
        } else {
            // The muted run records what the controller *would* have
            // done only implicitly; its daemon never switched.
            Vec::new()
        },
        objective: controller.score(&snap),
        snapshot: snap,
    })
}

/// Run the tuned and static daemons over the same trace and compare.
pub fn run_demo(atlas: &AtlasDoc, fit: &Fit, opts: &DemoOptions) -> Result<DemoOutcome, String> {
    let probe = Controller::new(atlas, fit, &opts.workload, &opts.initial, opts.tuner)?;
    let objectives = probe.observed_objectives().to_vec();
    let weights = probe.observed_weights().to_vec();
    let tuned = run_one(atlas, fit, opts, true)?;
    let baseline = run_one(atlas, fit, opts, false)?;
    let improvement = if baseline.objective > 0.0 {
        (baseline.objective - tuned.objective) / baseline.objective
    } else {
        0.0
    };
    Ok(DemoOutcome {
        tuned,
        baseline,
        objectives,
        weights,
        improvement,
    })
}
