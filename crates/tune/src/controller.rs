//! The live tuner: a deterministic control loop that watches the serve
//! daemon's streaming metrics and switches the running scheduler to the
//! atlas row the learned objective predicts will do better.
//!
//! The controller is deliberately engine-agnostic: it consumes
//! `(time, MetricsSnapshot)` observations — whatever the caller polls
//! from the daemon's `metrics` op — and emits scheduler labels for the
//! caller to feed back through the `policy set` op. Under the serve
//! daemon's `SimClock` the whole loop is bit-reproducible: same
//! observation sequence in, same switch sequence out.
//!
//! Decision rule. Over a sliding window the controller recovers the
//! *windowed* mean of each observable objective from the cumulative
//! streaming means (mean×count deltas — exact, since the daemon's
//! accumulators are exact). The atlas supplies each row's long-run cost
//! profile; scaling the observed window by each row's atlas cost ratio
//! predicts what the window *would* have cost under that row:
//!
//! ```text
//! pred(r) = Σⱼ (wⱼ/meanⱼ) · obsⱼ · atlasⱼ(r) / atlasⱼ(current)
//! ```
//!
//! with the learned weights `wⱼ` restricted to the objectives the
//! daemon can stream (ART, AWRT, bounded slowdown — the fairness axes
//! need per-user state the metrics op does not expose) and `meanⱼ` the
//! atlas group's per-axis mean, the same normalisation the fit used.
//! The controller switches to the argmin row only if it beats the
//! current row by the hysteresis margin *and* the dwell time since the
//! last switch has elapsed — both guards exist to stop flapping, which
//! a backlog-transfer switch makes cheap but never free.

use crate::atlas::AtlasDoc;
use crate::fit::Fit;
use jobsched_metrics::MetricsSnapshot;
use jobsched_workload::Time;
use std::collections::VecDeque;

/// Objectives the serve daemon streams, in atlas tag form.
pub const OBSERVABLE: [&str; 3] = ["art", "awrt", "bsld"];

/// Control-loop parameters.
#[derive(Clone, Copy, Debug)]
pub struct TunerConfig {
    /// Sliding-window length, simulated seconds.
    pub window: Time,
    /// Relative improvement the challenger must predict before a switch
    /// fires (0.05 = 5% better).
    pub hysteresis: f64,
    /// Minimum simulated seconds between switches.
    pub dwell: Time,
    /// Minimum completed jobs inside the window before the windowed
    /// means are considered meaningful.
    pub min_completions: u64,
}

impl Default for TunerConfig {
    fn default() -> Self {
        TunerConfig {
            window: 4 * 3600,
            hysteresis: 0.05,
            dwell: 2 * 3600,
            min_completions: 5,
        }
    }
}

/// One switch the controller decided on.
#[derive(Clone, Debug, PartialEq)]
pub struct Switch {
    /// Simulated instant of the decision.
    pub at: Time,
    /// Row the daemon was running.
    pub from: String,
    /// Row to switch to (serve-protocol label).
    pub to: String,
    /// Predicted windowed objective under `from` at decision time.
    pub predicted_current: f64,
    /// Predicted windowed objective under `to`.
    pub predicted_best: f64,
}

/// The adaptive policy tuner.
#[derive(Clone, Debug)]
pub struct Controller {
    cfg: TunerConfig,
    /// Atlas row labels (serve-protocol form), group row order.
    labels: Vec<String>,
    /// Observable objective tags actually present in the atlas.
    obs_tags: Vec<String>,
    /// Learned weights restricted to `obs_tags`, renormalised to sum 1.
    weights: Vec<f64>,
    /// Atlas-group per-axis means (the fit's normalisation), `obs_tags`
    /// order.
    means: Vec<f64>,
    /// Atlas costs `[row][obs_axis]`.
    costs: Vec<Vec<f64>>,
    /// Index of the row the daemon currently runs.
    current: usize,
    window: VecDeque<(Time, MetricsSnapshot)>,
    last_switch: Option<Time>,
    /// Every switch decided so far, in order.
    pub switches: Vec<Switch>,
}

impl Controller {
    /// Build a controller from a parsed atlas, a learned fit, the
    /// workload group to steer by, and the label the daemon starts on.
    pub fn new(
        atlas: &AtlasDoc,
        fit: &Fit,
        workload: &str,
        initial: &str,
        cfg: TunerConfig,
    ) -> Result<Self, String> {
        let group = atlas
            .groups
            .iter()
            .find(|g| g.workload == workload)
            .ok_or_else(|| format!("atlas has no workload group '{workload}'"))?;
        if fit.objectives != group.objectives {
            return Err("fit and atlas span different objective axes".into());
        }
        // Restrict to the streamable axes, keeping atlas order.
        let obs_idx: Vec<usize> = group
            .objectives
            .iter()
            .enumerate()
            .filter(|(_, t)| OBSERVABLE.contains(&t.as_str()))
            .map(|(i, _)| i)
            .collect();
        if obs_idx.is_empty() {
            return Err("atlas exposes no streamable objectives".into());
        }
        let mut weights: Vec<f64> = obs_idx.iter().map(|&i| fit.weights[i]).collect();
        let total: f64 = weights.iter().sum();
        if total > 0.0 {
            for w in &mut weights {
                *w /= total;
            }
        } else {
            // The fit put all its mass on axes the daemon cannot
            // stream; fall back to equal weight over what it can.
            let eq = 1.0 / weights.len() as f64;
            weights.iter_mut().for_each(|w| *w = eq);
        }
        let n = group.points.len() as f64;
        let means: Vec<f64> = obs_idx
            .iter()
            .map(|&j| {
                let m = group.points.iter().map(|p| p.costs[j]).sum::<f64>() / n;
                if m > 0.0 {
                    m
                } else {
                    1.0
                }
            })
            .collect();
        let costs: Vec<Vec<f64>> = group
            .points
            .iter()
            .map(|p| obs_idx.iter().map(|&j| p.costs[j]).collect())
            .collect();
        let labels: Vec<String> = group.points.iter().map(|p| p.label.clone()).collect();
        let current = labels
            .iter()
            .position(|l| l == initial)
            .ok_or_else(|| format!("initial scheduler '{initial}' is not an atlas row"))?;
        Ok(Controller {
            cfg,
            labels,
            obs_tags: obs_idx
                .iter()
                .map(|&i| group.objectives[i].clone())
                .collect(),
            weights,
            means,
            costs,
            current,
            window: VecDeque::new(),
            last_switch: None,
            switches: Vec::new(),
        })
    }

    /// Label of the row the controller believes the daemon runs.
    pub fn current_label(&self) -> &str {
        &self.labels[self.current]
    }

    /// The streamable objective tags the controller steers by.
    pub fn observed_objectives(&self) -> &[String] {
        &self.obs_tags
    }

    /// The restricted, renormalised weights.
    pub fn observed_weights(&self) -> &[f64] {
        &self.weights
    }

    /// Score a cumulative metrics snapshot under the learned objective:
    /// `Σⱼ (wⱼ/meanⱼ)·obsⱼ` over the streamable axes, the same
    /// normalisation the predictions use. Lower is better; the tuner
    /// demo compares tuned vs static runs with this.
    pub fn score(&self, snap: &MetricsSnapshot) -> f64 {
        self.obs_tags
            .iter()
            .zip(&self.weights)
            .zip(&self.means)
            .map(|((t, w), m)| {
                let o = match t.as_str() {
                    "art" => snap.art,
                    "awrt" => snap.awrt,
                    "bsld" => snap.bounded_slowdown,
                    other => unreachable!("non-streamable tag '{other}'"),
                };
                w / m * o
            })
            .sum()
    }

    /// Windowed per-objective means between the oldest in-window
    /// observation and the newest, from mean×count deltas. `None` until
    /// the window spans at least `min_completions` completions.
    fn windowed(&self) -> Option<Vec<f64>> {
        let (_, first) = self.window.front()?;
        let (_, last) = self.window.back()?;
        let dn = last.jobs_finished.checked_sub(first.jobs_finished)?;
        if dn < self.cfg.min_completions.max(1) {
            return None;
        }
        let delta = |now: f64, base: f64| {
            let nf = first.jobs_finished as f64;
            let nl = last.jobs_finished as f64;
            (now * nl - base * nf) / dn as f64
        };
        Some(
            self.obs_tags
                .iter()
                .map(|t| match t.as_str() {
                    "art" => delta(last.art, first.art),
                    "awrt" => delta(last.awrt, first.awrt),
                    "bsld" => delta(last.bounded_slowdown, first.bounded_slowdown),
                    other => unreachable!("non-streamable tag '{other}'"),
                })
                .collect(),
        )
    }

    /// Predicted windowed objective under row `r`, given the observed
    /// windowed means. Axes where the current row's atlas cost is zero
    /// carry no ratio information and are skipped.
    fn predict(&self, r: usize, obs: &[f64]) -> f64 {
        let cur = &self.costs[self.current];
        self.weights
            .iter()
            .zip(&self.means)
            .zip(obs)
            .enumerate()
            .map(|(j, ((w, m), o))| {
                if cur[j] > 0.0 {
                    w / m * o * (self.costs[r][j] / cur[j])
                } else {
                    0.0
                }
            })
            .sum()
    }

    /// Feed one observation. Returns the label to switch the daemon to
    /// when the decision rule fires; the caller must apply it (the
    /// controller assumes it will be).
    pub fn observe(&mut self, at: Time, snap: &MetricsSnapshot) -> Option<String> {
        // Evict observations that fell out of the window, but always
        // keep at least the newest previous one as the delta baseline.
        while let Some(&(t, _)) = self.window.front() {
            if t + self.cfg.window < at && self.window.len() > 1 {
                self.window.pop_front();
            } else {
                break;
            }
        }
        self.window.push_back((at, *snap));

        if let Some(t) = self.last_switch {
            if at - t < self.cfg.dwell {
                return None;
            }
        }
        let obs = self.windowed()?;
        let pred_cur = self.predict(self.current, &obs);
        if pred_cur.is_nan() || pred_cur <= 0.0 {
            return None;
        }
        let (best, pred_best) = (0..self.labels.len())
            .map(|r| (r, self.predict(r, &obs)))
            .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
            .expect("atlas groups are non-empty");
        if best == self.current || pred_best >= (1.0 - self.cfg.hysteresis) * pred_cur {
            return None;
        }
        let sw = Switch {
            at,
            from: self.labels[self.current].clone(),
            to: self.labels[best].clone(),
            predicted_current: pred_cur,
            predicted_best: pred_best,
        };
        self.current = best;
        self.last_switch = Some(at);
        // The window mixes two schedulers after a switch; restart the
        // baseline at the switch instant.
        let newest = self.window.pop_back().expect("just pushed");
        self.window.clear();
        self.window.push_back(newest);
        self.switches.push(sw.clone());
        Some(sw.to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atlas::AtlasGroup;
    use jobsched_metrics::{pareto_front, pareto_ranks, Point};

    /// Two-row atlas: `fcfs+none` (poor ART) vs `sjf+easy` (good ART),
    /// equal on bsld.
    fn atlas() -> AtlasDoc {
        let points = vec![
            Point::new("fcfs+none".to_string(), vec![100.0, 10.0]),
            Point::new("sjf+easy".to_string(), vec![40.0, 10.0]),
        ];
        let ranks = pareto_ranks(&points);
        let front = pareto_front(&points);
        AtlasDoc {
            schema: "bench-atlas/1".into(),
            scale: (0, 0, 0),
            groups: vec![AtlasGroup {
                workload: "ctc".into(),
                objectives: vec!["art".into(), "bsld".into()],
                names: vec!["FCFS".into(), "SJF+EASY".into()],
                points,
                ranks,
                front,
            }],
        }
    }

    fn fit_for(atlas: &AtlasDoc) -> Fit {
        Fit {
            objectives: atlas.groups[0].objectives.clone(),
            weights: vec![0.8, 0.2],
            violations: 0,
            evaluations: 0,
            groups: Vec::new(),
        }
    }

    fn snap(finished: u64, art: f64) -> MetricsSnapshot {
        MetricsSnapshot {
            jobs_submitted: finished + 5,
            jobs_started: finished + 2,
            jobs_finished: finished,
            jobs_cancelled: 0,
            art,
            awrt: art,
            bounded_slowdown: 3.0,
            utilization: 0.8,
            makespan: 0,
        }
    }

    fn cfg() -> TunerConfig {
        TunerConfig {
            window: 1000,
            hysteresis: 0.05,
            dwell: 500,
            min_completions: 5,
        }
    }

    #[test]
    fn switches_off_a_poor_row_once_the_window_fills() {
        let a = atlas();
        let f = fit_for(&a);
        let mut c = Controller::new(&a, &f, "ctc", "fcfs+none", cfg()).unwrap();
        assert_eq!(c.current_label(), "fcfs+none");
        // First observation: baseline only, never a decision.
        assert_eq!(c.observe(0, &snap(0, 0.0)), None);
        // Too few completions in window.
        assert_eq!(c.observe(100, &snap(3, 90.0)), None);
        // Window spans 10 completions at ART ≈ 95: the atlas says
        // sjf+easy would cut the dominant axis by 60%.
        let to = c.observe(200, &snap(10, 95.0));
        assert_eq!(to.as_deref(), Some("sjf+easy"));
        assert_eq!(c.current_label(), "sjf+easy");
        assert_eq!(c.switches.len(), 1);
        let sw = &c.switches[0];
        assert_eq!((sw.at, sw.from.as_str()), (200, "fcfs+none"));
        assert!(sw.predicted_best < sw.predicted_current);
    }

    #[test]
    fn hysteresis_blocks_marginal_switches() {
        let mut a = atlas();
        // Challenger only 2% better on the heavy axis: inside the 5%
        // hysteresis band once diluted by the equal bsld axis.
        a.groups[0].points[1] = Point::new("sjf+easy".to_string(), vec![98.0, 10.0]);
        let f = fit_for(&a);
        let mut c = Controller::new(&a, &f, "ctc", "fcfs+none", cfg()).unwrap();
        assert_eq!(c.observe(0, &snap(0, 0.0)), None);
        assert_eq!(c.observe(200, &snap(10, 95.0)), None);
        assert!(c.switches.is_empty());
    }

    #[test]
    fn dwell_throttles_flapping() {
        let a = atlas();
        let f = fit_for(&a);
        let mut c = Controller::new(&a, &f, "ctc", "fcfs+none", cfg()).unwrap();
        c.observe(0, &snap(0, 0.0));
        assert!(c.observe(200, &snap(10, 95.0)).is_some());
        // Now on sjf+easy; suppose observed ART *worsens* so fcfs+none
        // predicts better (atlas ratio 100/40 = 2.5x against, so this
        // cannot actually fire — make the challenger look better by
        // flipping the atlas view via fresh observations). Whatever the
        // numbers, nothing may fire before dwell elapses.
        assert_eq!(c.observe(300, &snap(20, 500.0)), None);
        assert_eq!(c.observe(600, &snap(30, 500.0)), None);
        assert_eq!(c.switches.len(), 1);
    }

    #[test]
    fn controller_is_deterministic() {
        let a = atlas();
        let f = fit_for(&a);
        let run = || {
            let mut c = Controller::new(&a, &f, "ctc", "fcfs+none", cfg()).unwrap();
            let mut out = Vec::new();
            for (t, n, art) in [
                (0, 0, 0.0),
                (100, 3, 90.0),
                (200, 10, 95.0),
                (900, 25, 50.0),
            ] {
                out.push(c.observe(t, &snap(n, art)));
            }
            (out, c.switches)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn fairness_only_weights_fall_back_to_equal_observable_weights() {
        let points = vec![
            Point::new("fcfs+none".to_string(), vec![100.0, 5.0]),
            Point::new("sjf+easy".to_string(), vec![40.0, 9.0]),
        ];
        let ranks = pareto_ranks(&points);
        let front = pareto_front(&points);
        let a = AtlasDoc {
            schema: "bench-atlas/1".into(),
            scale: (0, 0, 0),
            groups: vec![AtlasGroup {
                workload: "ctc".into(),
                objectives: vec!["art".into(), "fair-max".into()],
                names: vec!["FCFS".into(), "SJF+EASY".into()],
                points,
                ranks,
                front,
            }],
        };
        let f = Fit {
            objectives: a.groups[0].objectives.clone(),
            // All mass on the unstreamable fairness axis.
            weights: vec![0.0, 1.0],
            violations: 0,
            evaluations: 0,
            groups: Vec::new(),
        };
        let c = Controller::new(&a, &f, "ctc", "fcfs+none", cfg()).unwrap();
        assert_eq!(c.observed_objectives(), ["art".to_string()]);
        assert_eq!(c.observed_weights(), [1.0]);
    }

    #[test]
    fn construction_rejects_unknown_rows_and_workloads() {
        let a = atlas();
        let f = fit_for(&a);
        assert!(Controller::new(&a, &f, "prob", "fcfs+none", cfg()).is_err());
        assert!(Controller::new(&a, &f, "ctc", "lifo+none", cfg()).is_err());
    }
}
