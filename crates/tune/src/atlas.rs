//! Reading the committed `bench-atlas/1` artifact back into fit input.
//!
//! The atlas's `pareto` section already lifts every algorithm row into a
//! point of the per-workload objective space; this module re-parses that
//! section into [`AtlasGroup`]s and *recomputes* the non-domination
//! ranks with the same [`jobsched_metrics::pareto`] routines that
//! produced them — the fit never trusts stored ranks, so a hand-edited
//! or truncated document cannot smuggle an inconsistent target order
//! into the learner.

use jobsched_json::Json;
use jobsched_metrics::{pareto_front, pareto_ranks, Point};

/// One workload's slice of the atlas cost space.
#[derive(Clone, Debug)]
pub struct AtlasGroup {
    /// Workload kind tag ("ctc", "probabilistic").
    pub workload: String,
    /// Objective tags spanning the cost axes, in table order.
    pub objectives: Vec<String>,
    /// One point per algorithm row; labels are the serve-protocol
    /// scheduler labels (`policy+backfill`), so the tuner can feed them
    /// straight into the `policy` op.
    pub points: Vec<Point>,
    /// Display names (`SJF+EASY-Backfilling`, ...), parallel to `points`.
    pub names: Vec<String>,
    /// Recomputed non-domination rank per point (1 = on the front).
    pub ranks: Vec<usize>,
    /// Recomputed Pareto front (indices into `points`).
    pub front: Vec<usize>,
}

/// The parsed atlas: scale header plus per-workload groups.
#[derive(Clone, Debug)]
pub struct AtlasDoc {
    /// Schema tag of the source document.
    pub schema: String,
    /// `(ctc_jobs, synthetic_jobs, seed)` the atlas was generated at.
    pub scale: (u64, u64, u64),
    /// Per-workload cost-space groups, in document order.
    pub groups: Vec<AtlasGroup>,
}

fn str_of(j: &Json, key: &str) -> Result<String, String> {
    j.get(key)
        .and_then(|v| v.as_str())
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field '{key}'"))
}

fn u64_of(j: &Json, key: &str) -> Result<u64, String> {
    j.get(key)
        .and_then(|v| v.as_u64())
        .ok_or_else(|| format!("missing integer field '{key}'"))
}

/// Parse a `bench-atlas/1` document. Ranks and fronts are recomputed
/// from the cost vectors, not read back.
pub fn parse_atlas(doc: &Json) -> Result<AtlasDoc, String> {
    let schema = str_of(doc, "schema")?;
    if schema != jobsched_sweep::ATLAS_SCHEMA {
        return Err(format!("unsupported atlas schema '{schema}'"));
    }
    let scale = doc.get("scale").ok_or("missing 'scale'")?;
    let scale = (
        u64_of(scale, "ctc_jobs")?,
        u64_of(scale, "synthetic_jobs")?,
        u64_of(scale, "seed")?,
    );
    let groups = doc
        .get("pareto")
        .and_then(|v| v.as_arr())
        .ok_or("missing 'pareto' array")?;
    let mut out = Vec::with_capacity(groups.len());
    for g in groups {
        let workload = str_of(g, "workload")?;
        let objectives: Vec<String> = g
            .get("objectives")
            .and_then(|v| v.as_arr())
            .ok_or("group missing 'objectives'")?
            .iter()
            .map(|o| {
                o.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| "objective tags must be strings".to_string())
            })
            .collect::<Result<_, _>>()?;
        if objectives.is_empty() {
            return Err(format!("workload '{workload}': no objectives"));
        }
        let raw_points = g
            .get("points")
            .and_then(|v| v.as_arr())
            .ok_or("group missing 'points'")?;
        if raw_points.is_empty() {
            return Err(format!("workload '{workload}': no points"));
        }
        let mut points = Vec::with_capacity(raw_points.len());
        let mut names = Vec::with_capacity(raw_points.len());
        for p in raw_points {
            let label = format!("{}+{}", str_of(p, "algorithm")?, str_of(p, "backfill")?);
            let costs: Vec<f64> = p
                .get("costs")
                .and_then(|v| v.as_arr())
                .ok_or("point missing 'costs'")?
                .iter()
                .map(|c| {
                    c.as_f64()
                        .ok_or_else(|| "costs must be numbers".to_string())
                })
                .collect::<Result<_, _>>()?;
            if costs.len() != objectives.len() {
                return Err(format!(
                    "point '{label}': {} costs for {} objectives",
                    costs.len(),
                    objectives.len()
                ));
            }
            if costs.iter().any(|c| !c.is_finite() || *c < 0.0) {
                return Err(format!("point '{label}': non-finite or negative cost"));
            }
            names.push(str_of(p, "name")?);
            points.push(Point::new(label, costs));
        }
        let ranks = pareto_ranks(&points);
        let front = pareto_front(&points);
        out.push(AtlasGroup {
            workload,
            objectives,
            points,
            names,
            ranks,
            front,
        });
    }
    if out.is_empty() {
        return Err("atlas has no pareto groups".into());
    }
    // Every group must span the same objective axes in the same order —
    // the fit learns one weight vector across all workloads.
    for g in &out[1..] {
        if g.objectives != out[0].objectives {
            return Err(format!(
                "workload '{}' spans objectives {:?}, expected {:?}",
                g.workload, g.objectives, out[0].objectives
            ));
        }
    }
    Ok(AtlasDoc {
        schema,
        scale,
        groups: out,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use jobsched_json::parse;

    fn sample() -> String {
        r#"{
          "schema": "bench-atlas/1",
          "scale": {"ctc_jobs": 100, "synthetic_jobs": 50, "seed": 7},
          "pareto": [
            {
              "workload": "ctc",
              "objectives": ["art", "bsld"],
              "points": [
                {"algorithm":"fcfs","backfill":"easy","name":"FCFS+EASY","costs":[10.0,2.0],"rank":1,"on_front":true},
                {"algorithm":"sjf","backfill":"easy","name":"SJF+EASY","costs":[8.0,3.0],"rank":1,"on_front":true},
                {"algorithm":"fcfs","backfill":"none","name":"FCFS","costs":[12.0,4.0],"rank":2,"on_front":false}
              ]
            }
          ]
        }"#
        .to_string()
    }

    #[test]
    fn parses_and_recomputes_ranks() {
        let doc = parse(&sample()).unwrap();
        let atlas = parse_atlas(&doc).unwrap();
        assert_eq!(atlas.scale, (100, 50, 7));
        assert_eq!(atlas.groups.len(), 1);
        let g = &atlas.groups[0];
        assert_eq!(g.objectives, vec!["art", "bsld"]);
        assert_eq!(g.points[0].label, "fcfs+easy");
        assert_eq!(g.names[1], "SJF+EASY");
        assert_eq!(g.ranks, vec![1, 1, 2]);
        assert_eq!(g.front, vec![0, 1]);
    }

    #[test]
    fn stored_ranks_are_ignored() {
        // Corrupt the stored rank field: recomputation must not care.
        let text = sample().replace("\"rank\":1", "\"rank\":9");
        let atlas = parse_atlas(&parse(&text).unwrap()).unwrap();
        assert_eq!(atlas.groups[0].ranks, vec![1, 1, 2]);
    }

    #[test]
    fn malformed_documents_are_structured_errors() {
        let bad_schema = sample().replace("bench-atlas/1", "bench-atlas/9");
        assert!(parse_atlas(&parse(&bad_schema).unwrap()).is_err());
        let short = sample().replace("[12.0,4.0]", "[12.0]");
        assert!(parse_atlas(&parse(&short).unwrap())
            .unwrap_err()
            .contains("costs"));
        let neg = sample().replace("[12.0,4.0]", "[-1.0,4.0]");
        assert!(parse_atlas(&parse(&neg).unwrap()).is_err());
    }
}
