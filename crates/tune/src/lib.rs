//! `jobsched-tune`: the evaluation subsystem — learn the objective the
//! atlas implies, test its stability across workload draws, and steer a
//! live daemon with it.
//!
//! The paper evaluates every algorithm under objectives chosen *a
//! priori* (§4: ART, AWRT, slowdown). The atlas mega-sweep inverted the
//! economics — it measures all 43 policy rows under six objectives at
//! once — and this crate closes the loop on that data three ways:
//!
//! * [`fit`] — **objective learning**: find the scalarization weights
//!   whose induced total order agrees with the atlas's per-workload
//!   Pareto ranks (and report the rank pairs no linear weighting can
//!   separate);
//! * [`significance`] — **replication**: rerun the atlas grid over N
//!   independent resamplings of the probabilistic workload through the
//!   cached sweep runner, attach mean ± 95% CI to every cell, and flag
//!   Pareto-front memberships that are draw-level accidents;
//! * [`controller`] + [`demo`] — **the live tuner**: a deterministic
//!   control loop that watches a serve daemon's streaming metrics over
//!   a sliding window and switches the running scheduler through the
//!   `policy set` op when the learned objective predicts another atlas
//!   row would do better (hysteresis + dwell against flapping).
//!
//! [`atlas`] parses the committed `bench-atlas/1` artifact back into
//! fit input (recomputing ranks — stored ranks are never trusted), and
//! [`report`] renders everything into the committed `BENCH_tune.json`
//! (`bench-tune/1`) and `TUNE.md`. The `tune` binary drives all of it.
//!
//! Everything is deterministic: the fit is a fixed grid + descent
//! schedule, the significance campaign inherits the sweep runner's
//! bit-reproducibility, and the tuner under the serve daemon's virtual
//! clock replays exactly.

pub mod atlas;
pub mod controller;
pub mod demo;
pub mod fit;
pub mod report;
pub mod significance;

pub use atlas::{parse_atlas, AtlasDoc, AtlasGroup};
pub use controller::{Controller, Switch, TunerConfig, OBSERVABLE};
pub use demo::{run_demo, DemoOptions, DemoOutcome, DemoRun};
pub use fit::{fit, Fit, FitOptions, GroupFit};
pub use report::{build_json, build_markdown, check_clean, TUNE_SCHEMA};
pub use significance::{run_significance, RowStats, Significance};
